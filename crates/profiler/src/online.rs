//! Online re-estimation: the periodic feedback loop in which AppProfiler
//! "collects data (e.g., task resource usage and finish event) from
//! executors, and passes re-estimated resource configuration and task
//! duration to TaskScheduler".

use dagon_dag::{SimTime, StageEstimates, StageId};

/// Exponentially-weighted moving-average estimator over observed task
/// durations, per stage.
#[derive(Clone, Debug)]
pub struct OnlineEstimator {
    est: StageEstimates,
    /// EWMA smoothing factor in (0, 1]; 1.0 = trust only the last sample.
    alpha: f64,
    observed: Vec<u32>,
}

impl OnlineEstimator {
    pub fn new(prior: StageEstimates, alpha: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&alpha) && alpha > 0.0,
            "alpha must be in (0, 1]"
        );
        let n = prior.num_stages();
        Self {
            est: prior,
            alpha,
            observed: vec![0; n],
        }
    }

    /// Record one finished task of `stage` with the given wall duration.
    pub fn observe(&mut self, stage: StageId, duration_ms: SimTime) {
        let slot = &mut self.est.mean_task_ms[stage.index()];
        if self.observed[stage.index()] == 0 {
            *slot = duration_ms as f64;
        } else {
            *slot = self.alpha * duration_ms as f64 + (1.0 - self.alpha) * *slot;
        }
        self.observed[stage.index()] += 1;
    }

    /// Current estimates (prior where nothing was observed).
    pub fn current(&self) -> &StageEstimates {
        &self.est
    }

    /// How many samples have been folded in for `stage`.
    pub fn samples(&self, stage: StageId) -> u32 {
        self.observed[stage.index()]
    }
}

#[cfg(test)]
// Replay values in these tests are set, not computed: exact float
// equality is the contract being asserted.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use dagon_dag::examples::fig1;

    #[test]
    fn first_observation_replaces_prior() {
        let dag = fig1();
        let mut oe = OnlineEstimator::new(StageEstimates::exact(&dag), 0.5);
        oe.observe(StageId(0), 1_000);
        assert_eq!(oe.current().mean_ms(StageId(0)), 1_000.0);
        assert_eq!(oe.samples(StageId(0)), 1);
        // Other stages untouched.
        assert_eq!(oe.samples(StageId(1)), 0);
    }

    #[test]
    fn ewma_converges_toward_observations() {
        let dag = fig1();
        let mut oe = OnlineEstimator::new(StageEstimates::exact(&dag), 0.3);
        for _ in 0..50 {
            oe.observe(StageId(1), 2_000);
        }
        let m = oe.current().mean_ms(StageId(1));
        assert!((m - 2_000.0).abs() < 1.0, "{m}");
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn zero_alpha_rejected() {
        let dag = fig1();
        let _ = OnlineEstimator::new(StageEstimates::exact(&dag), 0.0);
    }
}
