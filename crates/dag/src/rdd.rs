//! RDDs: partitioned datasets flowing between stages.

use crate::ids::{BlockId, RddId, StageId};

/// Where an RDD's blocks materialize from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RddSource {
    /// Stored in HDFS before the job starts; blocks are placed on node disks
    /// by the simulator according to the replication factor.
    Hdfs,
    /// Produced by the tasks of a stage; block `k` appears on the disk of the
    /// node that ran task `k` when that task finishes (and in the producing
    /// executor's cache if [`Rdd::cached`]).
    Stage(StageId),
}

/// A partitioned dataset. Mirrors what Spark's `BlockManagerMaster` knows
/// about an RDD: partition count, per-block size, and whether the
/// application asked for it to be persisted (`.cache()`).
#[derive(Clone, Debug)]
pub struct Rdd {
    pub id: RddId,
    pub name: String,
    pub num_partitions: u32,
    /// Size of one block in MiB. Uniform within an RDD, as assumed in the
    /// paper's Table I study; skew across tasks is modelled on compute time.
    pub block_mb: f64,
    pub source: RddSource,
    /// `true` if the application persists this RDD, i.e. its blocks are
    /// eligible for BlockManager caching. HDFS inputs are cache-eligible too
    /// when marked (Spark can cache a scanned input via `.cache()` on the
    /// scan RDD).
    pub cached: bool,
}

impl Rdd {
    /// Iterate over all block ids of this RDD.
    pub fn blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        let id = self.id;
        (0..self.num_partitions).map(move |p| BlockId::new(id, p))
    }

    /// Total dataset size in MiB.
    pub fn total_mb(&self) -> f64 {
        self.block_mb * self.num_partitions as f64
    }

    /// Is this RDD an HDFS source?
    pub fn is_source(&self) -> bool {
        matches!(self.source, RddSource::Hdfs)
    }

    /// The producing stage, if any.
    pub fn producer(&self) -> Option<StageId> {
        match self.source {
            RddSource::Stage(s) => Some(s),
            RddSource::Hdfs => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rdd() -> Rdd {
        Rdd {
            id: RddId(3),
            name: "edges".into(),
            num_partitions: 4,
            block_mb: 128.0,
            source: RddSource::Hdfs,
            cached: false,
        }
    }

    #[test]
    fn blocks_enumerates_partitions() {
        let r = rdd();
        let blocks: Vec<_> = r.blocks().collect();
        assert_eq!(blocks.len(), 4);
        assert_eq!(blocks[0], BlockId::new(RddId(3), 0));
        assert_eq!(blocks[3], BlockId::new(RddId(3), 3));
    }

    #[test]
    fn total_size_and_source_flags() {
        let r = rdd();
        assert!((r.total_mb() - 512.0).abs() < 1e-9);
        assert!(r.is_source());
        assert_eq!(r.producer(), None);
        let mut s = rdd();
        s.source = RddSource::Stage(StageId(1));
        assert_eq!(s.producer(), Some(StageId(1)));
        assert!(!s.is_source());
    }
}
