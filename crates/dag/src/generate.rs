//! Seeded random DAG generation.
//!
//! Used by property tests (structural invariants must hold on arbitrary
//! DAGs), the optimality-gap ablation (small random DAGs vs the exhaustive
//! solver) and stress tests. Shapes follow the observation the paper cites
//! from GRAPHENE: median DAG depth ~5, heterogeneous task durations
//! (sub-second to hundreds of seconds) and demands.

// Parent index from a [0,1) draw scaled by `outputs.len()`: in range.
#![allow(clippy::cast_possible_truncation)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::dag::{DagBuilder, JobDag};
use crate::ids::RddId;

/// Parameters for random layered DAGs.
#[derive(Clone, Debug)]
pub struct GenParams {
    /// Number of stages to generate (≥ 1).
    pub stages: usize,
    /// Maximum parents per stage.
    pub max_parents: usize,
    /// Range of tasks per stage.
    pub tasks: (u32, u32),
    /// Range of per-task CPU demand.
    pub demand_cpus: (u32, u32),
    /// Range of per-task compute ms.
    pub cpu_ms: (u64, u64),
    /// Range of output block MiB.
    pub block_mb: (f64, f64),
    /// Probability a dependency is wide (vs narrow). Narrow deps force the
    /// child's task count to match the parent's partitions.
    pub wide_prob: f64,
    /// Probability each intermediate RDD is persisted.
    pub cache_prob: f64,
    /// Probability a stage (additionally) scans a fresh HDFS RDD.
    pub source_prob: f64,
}

impl Default for GenParams {
    fn default() -> Self {
        Self {
            stages: 10,
            max_parents: 2,
            tasks: (1, 16),
            demand_cpus: (1, 4),
            cpu_ms: (200, 30_000),
            block_mb: (16.0, 256.0),
            wide_prob: 0.5,
            cache_prob: 0.7,
            source_prob: 0.3,
        }
    }
}

fn sample_u32(rng: &mut SmallRng, (lo, hi): (u32, u32)) -> u32 {
    if lo >= hi {
        lo
    } else {
        rng.gen_range(lo..=hi)
    }
}

fn sample_u64(rng: &mut SmallRng, (lo, hi): (u64, u64)) -> u64 {
    if lo >= hi {
        lo
    } else {
        rng.gen_range(lo..=hi)
    }
}

/// Generate a random valid [`JobDag`]. Deterministic in `(params, seed)`.
pub fn random_dag(params: &GenParams, seed: u64) -> JobDag {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = DagBuilder::new(format!("rand{seed}"));
    // (rdd, partitions) of every stage output so far.
    let mut outputs: Vec<(RddId, u32)> = Vec::new();
    for i in 0..params.stages.max(1) {
        let mut sb_tasks = sample_u32(&mut rng, params.tasks).max(1);
        let mut narrow_parent: Option<RddId> = None;
        let mut wide_parents: Vec<RddId> = Vec::new();
        if !outputs.is_empty() {
            let nparents = rng
                .gen_range(1..=params.max_parents.max(1))
                .min(outputs.len());
            // Choose distinct parents biased toward recent stages (chains).
            let mut chosen: Vec<usize> = Vec::new();
            for _ in 0..nparents {
                let idx = outputs.len()
                    - 1
                    - (rng.gen::<f64>().powi(2) * outputs.len() as f64) as usize % outputs.len();
                if !chosen.contains(&idx) {
                    chosen.push(idx);
                }
            }
            for idx in chosen {
                let (rdd, parts) = outputs[idx];
                if narrow_parent.is_none() && rng.gen_bool(1.0 - params.wide_prob) {
                    narrow_parent = Some(rdd);
                    sb_tasks = parts; // narrow forces alignment
                } else {
                    wide_parents.push(rdd);
                }
            }
        }
        let scans_source = outputs.is_empty() || rng.gen_bool(params.source_prob);
        let source = if scans_source && narrow_parent.is_none() {
            let parts = sb_tasks;
            Some(b.hdfs_rdd(
                &format!("src{i}"),
                parts,
                sample_u64(&mut rng, (16, 256)) as f64,
            ))
        } else {
            None
        };
        let mut sb = b
            .stage(&format!("st{i}"))
            .tasks(sb_tasks)
            .demand_cpus(sample_u32(&mut rng, params.demand_cpus).max(1))
            .cpu_ms(sample_u64(&mut rng, params.cpu_ms).max(1))
            .output_mb(
                params.block_mb.0 + rng.gen::<f64>() * (params.block_mb.1 - params.block_mb.0),
            );
        if let Some(r) = narrow_parent {
            sb = sb.reads_narrow(r);
        }
        if let Some(r) = source {
            sb = sb.reads_narrow(r);
        }
        for r in wide_parents {
            sb = sb.reads_wide(r);
        }
        if rng.gen_bool(params.cache_prob) {
            sb = sb.cache_output();
        }
        let (_, out) = sb.build();
        outputs.push((out, sb_tasks));
    }
    b.build().expect("generator produces valid DAGs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ready_stages, Closure};

    #[test]
    fn generator_is_deterministic() {
        let p = GenParams::default();
        let a = random_dag(&p, 42);
        let b = random_dag(&p, 42);
        assert_eq!(a.num_stages(), b.num_stages());
        for (x, y) in a.stages().iter().zip(b.stages()) {
            assert_eq!(x.num_tasks, y.num_tasks);
            assert_eq!(x.cpu_ms, y.cpu_ms);
            assert_eq!(x.parents, y.parents);
        }
    }

    #[test]
    fn generated_dags_are_valid_across_seeds() {
        let p = GenParams {
            stages: 25,
            ..Default::default()
        };
        for seed in 0..50 {
            let d = random_dag(&p, seed);
            assert_eq!(d.num_stages(), 25);
            // topo order exists and every root is ready at t0.
            let done = vec![false; d.num_stages()];
            let ready = ready_stages(&d, &done);
            assert!(!ready.is_empty());
            // Closure is acyclic: no stage is its own successor.
            let c = Closure::successors(&d);
            for s in d.stage_ids() {
                assert!(!c.contains(s, s));
            }
        }
    }

    #[test]
    fn single_stage_param_works() {
        let p = GenParams {
            stages: 1,
            ..Default::default()
        };
        let d = random_dag(&p, 7);
        assert_eq!(d.num_stages(), 1);
        assert!(d.parents(crate::ids::StageId(0)).is_empty());
    }
}
