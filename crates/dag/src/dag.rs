//! [`JobDag`]: an immutable, validated stage DAG, plus its builder.

// Stage/RDD/task ids are u32 by design; `len()` mints are bounded by
// DAG construction (thousands of stages at paper scale, not billions).
#![allow(clippy::cast_possible_truncation)]

use std::collections::BTreeMap;
use std::fmt;

use crate::ids::{RddId, StageId};
use crate::rdd::{Rdd, RddSource};
use crate::resources::{Resources, SimTime};
use crate::stage::{DepKind, Stage, StageInput};

/// Errors detected while building or validating a DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// A cycle was found among the stages (so it isn't a DAG at all).
    Cycle,
    /// A narrow dependency joins RDDs with different partition counts.
    NarrowPartitionMismatch {
        stage: StageId,
        rdd: RddId,
        rdd_parts: u32,
        tasks: u32,
    },
    /// A stage declares zero tasks.
    EmptyStage(StageId),
    /// A stage has a zero-CPU demand, which would let infinitely many tasks
    /// pack into an executor.
    ZeroDemand(StageId),
    /// The DAG has no stages.
    Empty,
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::Cycle => write!(f, "stage graph contains a cycle"),
            DagError::NarrowPartitionMismatch {
                stage,
                rdd,
                rdd_parts,
                tasks,
            } => write!(
                f,
                "{stage} reads {rdd} narrowly but has {tasks} tasks vs {rdd_parts} partitions"
            ),
            DagError::EmptyStage(s) => write!(f, "{s} has zero tasks"),
            DagError::ZeroDemand(s) => write!(f, "{s} has zero-CPU task demand"),
            DagError::Empty => write!(f, "DAG has no stages"),
        }
    }
}

impl std::error::Error for DagError {}

/// An immutable job DAG: stages, RDDs, and derived adjacency.
///
/// Construct via [`DagBuilder`]; construction validates acyclicity, narrow
/// partition alignment and non-degenerate demands, so every `JobDag` in the
/// system is well-formed by construction.
#[derive(Clone, Debug)]
pub struct JobDag {
    name: String,
    stages: Vec<Stage>,
    rdds: Vec<Rdd>,
    /// children[i] = stages that list stage i as a parent.
    children: Vec<Vec<StageId>>,
    topo: Vec<StageId>,
}

impl JobDag {
    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    pub fn num_rdds(&self) -> usize {
        self.rdds.len()
    }

    pub fn stage(&self, id: StageId) -> &Stage {
        &self.stages[id.index()]
    }

    pub fn rdd(&self, id: RddId) -> &Rdd {
        &self.rdds[id.index()]
    }

    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    pub fn rdds(&self) -> &[Rdd] {
        &self.rdds
    }

    pub fn stage_ids(&self) -> impl Iterator<Item = StageId> {
        (0..self.stages.len() as u32).map(StageId)
    }

    /// Direct children (consumers) of a stage.
    pub fn children(&self, id: StageId) -> &[StageId] {
        &self.children[id.index()]
    }

    /// Direct parents of a stage.
    pub fn parents(&self, id: StageId) -> &[StageId] {
        &self.stage(id).parents
    }

    /// A topological order of the stages (parents before children). Stable:
    /// ties broken by stage id, so FIFO order is the topo order for DAGs
    /// declared in submission order.
    pub fn topo_order(&self) -> &[StageId] {
        &self.topo
    }

    /// Stages with no parents (runnable at t=0).
    pub fn roots(&self) -> Vec<StageId> {
        self.stage_ids()
            .filter(|s| self.parents(*s).is_empty())
            .collect()
    }

    /// Stages with no children.
    pub fn leaves(&self) -> Vec<StageId> {
        self.stage_ids()
            .filter(|s| self.children(*s).is_empty())
            .collect()
    }

    /// All stages that read `rdd` as an input, with the dependency kind.
    pub fn consumers(&self, rdd: RddId) -> Vec<(StageId, DepKind)> {
        self.stages
            .iter()
            .flat_map(|s| {
                s.inputs
                    .iter()
                    .filter(move |i| i.rdd == rdd)
                    .map(move |i| (s.id, i.kind))
            })
            .collect()
    }

    /// Sum of `total_work` over every stage: the job's aggregate
    /// vCPU-milliseconds.
    pub fn total_work(&self) -> u64 {
        self.stages.iter().map(|s| s.total_work()).sum()
    }
}

/// Builder for one stage; returned by [`DagBuilder::stage`].
pub struct StageBuilder<'a> {
    dag: &'a mut DagBuilder,
    name: String,
    num_tasks: u32,
    demand: Resources,
    cpu_ms: SimTime,
    skew: Vec<f64>,
    inputs: Vec<StageInput>,
    output_block_mb: f64,
    cache_output: bool,
    release_ms: SimTime,
}

impl<'a> StageBuilder<'a> {
    /// Number of tasks (and output partitions).
    pub fn tasks(mut self, n: u32) -> Self {
        self.num_tasks = n;
        self
    }

    /// Per-task resource demand `d_i` (CPU-only convenience).
    pub fn demand_cpus(mut self, cpus: u32) -> Self {
        self.demand = Resources::cpus(cpus);
        self
    }

    /// Per-task resource demand `d_i` (full vector).
    pub fn demand(mut self, r: Resources) -> Self {
        self.demand = r;
        self
    }

    /// Per-task base compute time in ms.
    pub fn cpu_ms(mut self, ms: SimTime) -> Self {
        self.cpu_ms = ms;
        self
    }

    /// Multiplicative compute-time skew pattern across tasks.
    pub fn skew(mut self, skew: Vec<f64>) -> Self {
        self.skew = skew;
        self
    }

    /// Add a narrow input.
    pub fn reads_narrow(mut self, rdd: RddId) -> Self {
        self.inputs.push(StageInput {
            rdd,
            kind: DepKind::Narrow,
        });
        self
    }

    /// Add a wide (shuffle) input.
    pub fn reads_wide(mut self, rdd: RddId) -> Self {
        self.inputs.push(StageInput {
            rdd,
            kind: DepKind::Wide,
        });
        self
    }

    /// Size of each output block in MiB (default 64).
    pub fn output_mb(mut self, mb: f64) -> Self {
        self.output_block_mb = mb;
        self
    }

    /// Persist the output RDD (make it cache-eligible).
    pub fn cache_output(mut self) -> Self {
        self.cache_output = true;
        self
    }

    /// Earliest readiness time (job arrival in a multi-tenant merge).
    pub fn release_ms(mut self, ms: SimTime) -> Self {
        self.release_ms = ms;
        self
    }

    /// Finish the stage; returns `(stage, output_rdd)` ids.
    pub fn build(self) -> (StageId, RddId) {
        let stage_id = StageId(self.dag.stages.len() as u32);
        let out_id = RddId(self.dag.rdds.len() as u32);
        let mut parents: Vec<StageId> = self
            .inputs
            .iter()
            .filter_map(|i| self.dag.rdds[i.rdd.index()].producer())
            .collect();
        parents.sort_unstable();
        parents.dedup();
        self.dag.rdds.push(Rdd {
            id: out_id,
            name: format!("{}_out", self.name),
            num_partitions: self.num_tasks,
            block_mb: self.output_block_mb,
            source: RddSource::Stage(stage_id),
            cached: self.cache_output,
        });
        self.dag.stages.push(Stage {
            id: stage_id,
            name: self.name,
            num_tasks: self.num_tasks,
            demand: self.demand,
            cpu_ms: self.cpu_ms,
            skew: self.skew,
            inputs: self.inputs,
            output: out_id,
            parents,
            release_ms: self.release_ms,
        });
        (stage_id, out_id)
    }
}

/// Incremental DAG construction with validation at the end.
pub struct DagBuilder {
    name: String,
    stages: Vec<Stage>,
    rdds: Vec<Rdd>,
}

impl DagBuilder {
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            stages: Vec::new(),
            rdds: Vec::new(),
        }
    }

    /// Declare an HDFS-resident source RDD.
    pub fn hdfs_rdd(&mut self, name: &str, partitions: u32, block_mb: f64) -> RddId {
        self.hdfs_rdd_cached(name, partitions, block_mb, false)
    }

    /// Declare an HDFS-resident source RDD that the application persists.
    pub fn hdfs_rdd_cached(
        &mut self,
        name: &str,
        partitions: u32,
        block_mb: f64,
        cached: bool,
    ) -> RddId {
        let id = RddId(self.rdds.len() as u32);
        self.rdds.push(Rdd {
            id,
            name: name.into(),
            num_partitions: partitions,
            block_mb,
            source: RddSource::Hdfs,
            cached,
        });
        id
    }

    /// Begin a stage. Stage ids follow declaration order = FIFO submission
    /// order.
    pub fn stage(&mut self, name: &str) -> StageBuilder<'_> {
        StageBuilder {
            dag: self,
            name: name.into(),
            num_tasks: 1,
            demand: Resources::cpus(1),
            cpu_ms: 1_000,
            skew: vec![1.0],
            inputs: Vec::new(),
            output_block_mb: 64.0,
            cache_output: false,
            release_ms: 0,
        }
    }

    /// The output RDD of a previously built stage.
    pub fn output_of(&self, stage: StageId) -> RddId {
        self.stages[stage.index()].output
    }

    /// Mark an existing RDD cache-eligible after the fact.
    pub fn persist(&mut self, rdd: RddId) {
        self.rdds[rdd.index()].cached = true;
    }

    /// Validate and freeze.
    pub fn build(self) -> Result<JobDag, DagError> {
        if self.stages.is_empty() {
            return Err(DagError::Empty);
        }
        for s in &self.stages {
            if s.num_tasks == 0 {
                return Err(DagError::EmptyStage(s.id));
            }
            if s.demand.cpus == 0 {
                return Err(DagError::ZeroDemand(s.id));
            }
            for i in &s.inputs {
                if i.kind == DepKind::Narrow {
                    let parts = self.rdds[i.rdd.index()].num_partitions;
                    if parts != s.num_tasks {
                        return Err(DagError::NarrowPartitionMismatch {
                            stage: s.id,
                            rdd: i.rdd,
                            rdd_parts: parts,
                            tasks: s.num_tasks,
                        });
                    }
                }
            }
        }
        let n = self.stages.len();
        let mut children = vec![Vec::new(); n];
        for s in &self.stages {
            for p in &s.parents {
                children[p.index()].push(s.id);
            }
        }
        for c in &mut children {
            c.sort_unstable();
            c.dedup();
        }
        // Kahn topological sort with a min-heap so ties resolve by stage id.
        let mut indeg: Vec<usize> = self.stages.iter().map(|s| s.parents.len()).collect();
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<StageId>> = indeg
            .iter()
            .enumerate()
            .filter(|(_, d)| **d == 0)
            .map(|(i, _)| std::cmp::Reverse(StageId(i as u32)))
            .collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(s)) = heap.pop() {
            topo.push(s);
            for &c in &children[s.index()] {
                indeg[c.index()] -= 1;
                if indeg[c.index()] == 0 {
                    heap.push(std::cmp::Reverse(c));
                }
            }
        }
        if topo.len() != n {
            return Err(DagError::Cycle);
        }
        Ok(JobDag {
            name: self.name,
            stages: self.stages,
            rdds: self.rdds,
            children,
            topo,
        })
    }
}

/// A map from stage to arbitrary per-stage data, dense over one DAG.
/// Ordered so that iterating it can never leak nondeterminism (D1).
pub type StageMap<T> = BTreeMap<StageId, T>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MIN_MS;

    /// diamond: s0 -> {s1, s2} -> s3
    fn diamond() -> JobDag {
        let mut b = DagBuilder::new("diamond");
        let a = b.hdfs_rdd("A", 4, 64.0);
        let (s0, r0) = b
            .stage("scan")
            .tasks(4)
            .demand_cpus(1)
            .cpu_ms(1000)
            .reads_narrow(a)
            .build();
        let (_s1, r1) = b
            .stage("l")
            .tasks(4)
            .demand_cpus(2)
            .cpu_ms(2000)
            .reads_narrow(r0)
            .build();
        let (_s2, r2) = b
            .stage("r")
            .tasks(2)
            .demand_cpus(1)
            .cpu_ms(500)
            .reads_wide(r0)
            .build();
        let (s3, _) = b
            .stage("join")
            .tasks(2)
            .demand_cpus(1)
            .cpu_ms(100)
            .reads_wide(r1)
            .reads_wide(r2)
            .build();
        let dag = b.build().unwrap();
        assert_eq!(s0, StageId(0));
        assert_eq!(s3, StageId(3));
        dag
    }

    #[test]
    fn builder_derives_parents_and_children() {
        let d = diamond();
        assert_eq!(d.parents(StageId(0)), &[]);
        assert_eq!(d.parents(StageId(1)), &[StageId(0)]);
        assert_eq!(d.parents(StageId(3)), &[StageId(1), StageId(2)]);
        assert_eq!(d.children(StageId(0)), &[StageId(1), StageId(2)]);
        assert_eq!(d.roots(), vec![StageId(0)]);
        assert_eq!(d.leaves(), vec![StageId(3)]);
    }

    #[test]
    fn topo_order_respects_dependencies_and_ids() {
        let d = diamond();
        assert_eq!(
            d.topo_order(),
            &[StageId(0), StageId(1), StageId(2), StageId(3)]
        );
    }

    #[test]
    fn narrow_mismatch_rejected() {
        let mut b = DagBuilder::new("bad");
        let a = b.hdfs_rdd("A", 4, 64.0);
        let _ = b.stage("s").tasks(3).reads_narrow(a).build();
        assert!(matches!(
            b.build(),
            Err(DagError::NarrowPartitionMismatch { .. })
        ));
    }

    #[test]
    fn wide_partition_counts_may_differ() {
        let mut b = DagBuilder::new("ok");
        let a = b.hdfs_rdd("A", 4, 64.0);
        let _ = b.stage("s").tasks(2).reads_wide(a).build();
        assert!(b.build().is_ok());
    }

    #[test]
    fn empty_dag_rejected() {
        assert_eq!(DagBuilder::new("e").build().unwrap_err(), DagError::Empty);
    }

    #[test]
    fn zero_task_stage_rejected() {
        let mut b = DagBuilder::new("z");
        let _ = b.stage("s").tasks(0).build();
        assert!(matches!(b.build(), Err(DagError::EmptyStage(_))));
    }

    #[test]
    fn consumers_lists_reading_stages() {
        let d = diamond();
        let r0 = d.stage(StageId(0)).output;
        let cons = d.consumers(r0);
        assert_eq!(cons.len(), 2);
        assert!(cons.contains(&(StageId(1), DepKind::Narrow)));
        assert!(cons.contains(&(StageId(2), DepKind::Wide)));
    }

    #[test]
    fn total_work_sums_stages() {
        let mut b = DagBuilder::new("w");
        let (_, r) = b
            .stage("a")
            .tasks(3)
            .demand_cpus(4)
            .cpu_ms(4 * MIN_MS)
            .build();
        let _ = b
            .stage("b")
            .tasks(1)
            .demand_cpus(1)
            .cpu_ms(4 * MIN_MS)
            .reads_wide(r)
            .build();
        let d = b.build().unwrap();
        assert_eq!(d.total_work() / MIN_MS, 48 + 4);
    }

    #[test]
    fn output_rdd_shapes_follow_stage() {
        let d = diamond();
        let s1 = d.stage(StageId(1));
        let out = d.rdd(s1.output);
        assert_eq!(out.num_partitions, s1.num_tasks);
        assert_eq!(out.producer(), Some(StageId(1)));
    }
}
