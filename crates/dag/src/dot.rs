//! Graphviz DOT export — handy for eyeballing workload DAG shapes
//! (`repro fig1` prints the Fig. 1 DAG this way).

use std::fmt::Write as _;

use crate::dag::JobDag;
use crate::resources::MIN_MS;
use crate::stage::DepKind;

/// Render the stage graph as DOT. Stages are boxes labelled with their
/// `⟨resource, duration⟩` annotation; dashed edges are wide (shuffle)
/// dependencies; ellipses are HDFS source RDDs.
pub fn to_dot(dag: &JobDag) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", dag.name());
    let _ = writeln!(out, "  rankdir=TB; node [shape=box fontsize=10];");
    for s in dag.stages() {
        let dur = if s.cpu_ms % MIN_MS == 0 && s.cpu_ms >= MIN_MS {
            format!("{}min", s.cpu_ms / MIN_MS)
        } else {
            format!("{:.1}s", s.cpu_ms as f64 / 1000.0)
        };
        let _ = writeln!(
            out,
            "  {} [label=\"{} ({})\\n<{} vCPU, {}> x{}\"];",
            s.id, s.name, s.id, s.demand.cpus, dur, s.num_tasks
        );
    }
    for r in dag.rdds().iter().filter(|r| r.is_source()) {
        let _ = writeln!(
            out,
            "  \"{}\" [shape=ellipse label=\"{} ({} x {:.0}MB)\"];",
            r.id, r.name, r.num_partitions, r.block_mb
        );
    }
    for s in dag.stages() {
        for i in &s.inputs {
            let style = match i.kind {
                DepKind::Narrow => "solid",
                DepKind::Wide => "dashed",
            };
            let rdd = dag.rdd(i.rdd);
            match rdd.producer() {
                Some(p) => {
                    let _ = writeln!(
                        out,
                        "  {} -> {} [style={} label=\"{}\"];",
                        p, s.id, style, rdd.name
                    );
                }
                None => {
                    let _ = writeln!(out, "  \"{}\" -> {} [style={}];", rdd.id, s.id, style);
                }
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::fig1;

    #[test]
    fn dot_contains_all_stages_and_edge_styles() {
        let dot = to_dot(&fig1());
        assert!(dot.starts_with("digraph"));
        for s in ["S0", "S1", "S2", "S3"] {
            assert!(dot.contains(s), "missing {s}");
        }
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("style=solid"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_labels_show_demand_and_duration() {
        let dot = to_dot(&fig1());
        assert!(dot.contains("<4 vCPU, 4min> x3"));
        assert!(dot.contains("<6 vCPU, 2min> x3"));
    }
}
