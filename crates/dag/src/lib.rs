//! # dagon-dag — job DAG model
//!
//! This crate is the foundation of the Dagon reproduction. It models the
//! static structure a Spark driver sees after `DAGScheduler` has split a job
//! into stages:
//!
//! * [`Rdd`]s partitioned into [`BlockId`]-addressed blocks,
//! * [`Stage`]s with per-task resource demands `d_i` and base compute times,
//! * narrow/wide dependencies between stages,
//! * graph algorithms (topological order, successor closures, critical
//!   paths) used by every scheduler, and
//! * the stage *priority value* `pv_i = w_i + Σ_{j ∈ succ*(i)} w_j` of the
//!   paper's Eq. (6), on which both Dagon's task assignment (Alg. 1) and the
//!   LRP cache policy (Def. 1) are built.
//!
//! Everything downstream (`dagon-cluster`, `dagon-sched`, `dagon-cache`,
//! `dagon-workloads`) consumes these types; nothing here depends on the
//! simulator.

pub mod dag;
pub mod dot;
pub mod estimates;
pub mod examples;
pub mod generate;
pub mod graph;
pub mod ids;
pub mod multi;
pub mod priority;
pub mod rdd;
pub mod resources;
pub mod stage;

pub use dag::{DagBuilder, DagError, JobDag, StageBuilder};
pub use estimates::StageEstimates;
pub use ids::{BlockId, RddId, StageId, TaskId};
pub use multi::{job_completion_ms, JobSet, JobSlot};
pub use priority::{PriorityTracker, Work};
pub use rdd::{Rdd, RddSource};
pub use resources::{Resources, SimTime, MIN_MS, SEC_MS};
pub use stage::{DepKind, Stage, StageInput};
