//! Stages: the schedulable unit produced by Spark's `DAGScheduler`.

// Skewed task ms: `.round().max(0)` of a small nonnegative product.
#![allow(clippy::cast_possible_truncation)]

use crate::ids::{RddId, StageId};
use crate::resources::{Resources, SimTime};

/// How a stage consumes an input RDD.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DepKind {
    /// Narrow dependency: task `k` reads partition `k` of the input. This is
    /// the pattern that gives tasks a data-locality preference (the block's
    /// host) and the one delay scheduling acts on.
    Narrow,
    /// Wide (shuffle) dependency: every task reads a `1/num_tasks` share of
    /// every input block. Like Spark's shuffle reads, wide inputs carry no
    /// single-host locality preference.
    Wide,
}

/// One input edge of a stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageInput {
    pub rdd: RddId,
    pub kind: DepKind,
}

/// A stage: `num_tasks` identical tasks, each demanding
/// `⟨demand, cpu_ms⟩` — the `⟨resource, duration⟩` label of the paper's
/// Fig. 1 — plus the stage's input edges and output RDD.
///
/// `cpu_ms` is *pure compute* time; I/O time is added by the simulator from
/// block sizes and locality at launch, so a stage's locality sensitivity
/// emerges from its compute-to-input-bytes ratio rather than being asserted.
#[derive(Clone, Debug)]
pub struct Stage {
    pub id: StageId,
    pub name: String,
    pub num_tasks: u32,
    /// Per-task resource demand `d_i`.
    pub demand: Resources,
    /// Per-task base compute time (at any locality; excludes input I/O).
    pub cpu_ms: SimTime,
    /// Multiplicative skew on the compute time of individual tasks:
    /// task `k` runs for `cpu_ms * skew[k % skew.len()]`. `[1.0]` = no skew.
    pub skew: Vec<f64>,
    pub inputs: Vec<StageInput>,
    /// The RDD this stage produces (always exists; `num_partitions ==
    /// num_tasks`).
    pub output: RddId,
    /// Parent stages (derived from `inputs` whose RDD is stage-produced).
    pub parents: Vec<StageId>,
    /// Earliest time this stage may become ready (job arrival time in a
    /// multi-tenant merge; 0 for single-job DAGs).
    pub release_ms: SimTime,
}

impl Stage {
    /// Compute time of one specific task, with skew applied.
    pub fn task_cpu_ms(&self, task_index: u32) -> SimTime {
        if self.skew.is_empty() {
            return self.cpu_ms;
        }
        let f = self.skew[task_index as usize % self.skew.len()];
        (self.cpu_ms as f64 * f).round().max(0.0) as SimTime
    }

    /// Workload of one task in vCPU-ms: `d_i.cpus * duration`. The paper's
    /// Table III counts these in vCPU-minutes; the unit cancels everywhere.
    pub fn task_work(&self, task_index: u32) -> u64 {
        self.demand.cpus as u64 * self.task_cpu_ms(task_index)
    }

    /// Total stage workload `w_i` over all tasks (Eq. 6's `w_i` at t=0).
    pub fn total_work(&self) -> u64 {
        (0..self.num_tasks).map(|k| self.task_work(k)).sum()
    }

    /// Mean task compute time (used by Eq. 7's `t̄d_i` before any task has
    /// actually finished).
    pub fn mean_task_cpu_ms(&self) -> SimTime {
        if self.num_tasks == 0 {
            return 0;
        }
        let sum: u64 = (0..self.num_tasks).map(|k| self.task_cpu_ms(k)).sum();
        sum / self.num_tasks as u64
    }

    /// Does this stage read any input through a narrow dependency? Only such
    /// stages have per-task preferred locations.
    pub fn has_narrow_input(&self) -> bool {
        self.inputs.iter().any(|i| i.kind == DepKind::Narrow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage() -> Stage {
        Stage {
            id: StageId(1),
            name: "s".into(),
            num_tasks: 3,
            demand: Resources::cpus(4),
            cpu_ms: 4 * crate::MIN_MS,
            skew: vec![1.0],
            inputs: vec![StageInput {
                rdd: RddId(0),
                kind: DepKind::Narrow,
            }],
            output: RddId(1),
            parents: vec![],
            release_ms: 0,
        }
    }

    #[test]
    fn fig1_stage1_work_is_48_vcpu_minutes() {
        // Paper §III-A.1: stage 1 = 3 tasks × ⟨4 vCPUs, 4 minutes⟩ = 48.
        let s = stage();
        assert_eq!(s.total_work() / crate::MIN_MS, 48);
        assert_eq!(s.task_work(0) / crate::MIN_MS, 16);
    }

    #[test]
    fn skew_scales_individual_tasks() {
        let mut s = stage();
        s.skew = vec![1.0, 2.0];
        assert_eq!(s.task_cpu_ms(0), s.cpu_ms);
        assert_eq!(s.task_cpu_ms(1), s.cpu_ms * 2);
        assert_eq!(s.task_cpu_ms(2), s.cpu_ms); // wraps
    }

    #[test]
    fn narrow_detection() {
        let mut s = stage();
        assert!(s.has_narrow_input());
        s.inputs[0].kind = DepKind::Wide;
        assert!(!s.has_narrow_input());
    }
}
