//! Hand-built example DAGs, most importantly the paper's Fig. 1.

use crate::dag::{DagBuilder, JobDag};
use crate::resources::MIN_MS;

/// The running example DAG of the paper (Fig. 1), reconstructed from
/// Fig. 2, Table I and Table III:
///
/// ```text
///   A (HDFS, 3 blocks) ──narrow──▶ Stage1 ⟨4 vCPU, 4 min⟩ × 3 ──▶ B
///   C (HDFS, 3 blocks) ──narrow──▶ Stage2 ⟨6 vCPU, 2 min⟩ × 3 ──▶ D
///   D ──wide──▶ Stage3 ⟨3 vCPU, 4 min⟩ × 2 ──▶ E
///   B, E ──wide──▶ Stage4 ⟨1 vCPU, 4 min⟩ × 1 ──▶ F
/// ```
///
/// Workloads: w1 = 48, w2 = 36, w3 = 24, w4 = 4 vCPU-minutes, giving the
/// priority values of Table III (pv1 = 52, pv2 = 64). All intermediate RDDs
/// and the two scan inputs are persisted, matching Table I where scanned
/// `C` blocks appear in the cache.
///
/// Paper stage *k* is [`StageId`]`(k-1)` here (`S1 → StageId(0)`, …).
///
/// [`StageId`]: crate::ids::StageId
pub fn fig1() -> JobDag {
    let mut b = DagBuilder::new("fig1");
    let a = b.hdfs_rdd_cached("A", 3, 64.0, true);
    let c = b.hdfs_rdd_cached("C", 3, 64.0, true);
    let (_s1, rb) = b
        .stage("stage1")
        .tasks(3)
        .demand_cpus(4)
        .cpu_ms(4 * MIN_MS)
        .reads_narrow(a)
        .output_mb(64.0)
        .cache_output()
        .build();
    let (_s2, rd) = b
        .stage("stage2")
        .tasks(3)
        .demand_cpus(6)
        .cpu_ms(2 * MIN_MS)
        .reads_narrow(c)
        .output_mb(64.0)
        .cache_output()
        .build();
    let (_s3, re) = b
        .stage("stage3")
        .tasks(2)
        .demand_cpus(3)
        .cpu_ms(4 * MIN_MS)
        .reads_wide(rd)
        .output_mb(64.0)
        .cache_output()
        .build();
    let _ = b
        .stage("stage4")
        .tasks(1)
        .demand_cpus(1)
        .cpu_ms(4 * MIN_MS)
        .reads_wide(rb)
        .reads_wide(re)
        .output_mb(64.0)
        .build();
    b.build().expect("fig1 is a valid DAG")
}

/// A two-stage map job (scan → aggregate) for quick tests.
pub fn tiny_chain(tasks: u32, cpu_ms: u64) -> JobDag {
    let mut b = DagBuilder::new("tiny_chain");
    let a = b.hdfs_rdd("in", tasks, 64.0);
    let (_, r) = b
        .stage("scan")
        .tasks(tasks)
        .demand_cpus(1)
        .cpu_ms(cpu_ms)
        .reads_narrow(a)
        .cache_output()
        .build();
    let _ = b
        .stage("agg")
        .tasks(tasks.max(1) / 2 + 1)
        .demand_cpus(1)
        .cpu_ms(cpu_ms / 2)
        .reads_wide(r)
        .build();
    b.build().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{depth, Closure};
    use crate::ids::StageId;

    #[test]
    fn fig1_workloads_match_paper() {
        let d = fig1();
        let w: Vec<u64> = d.stages().iter().map(|s| s.total_work() / MIN_MS).collect();
        assert_eq!(w, vec![48, 36, 24, 4]);
    }

    #[test]
    fn fig1_structure() {
        let d = fig1();
        assert_eq!(d.num_stages(), 4);
        assert_eq!(depth(&d), 3); // S2 -> S3 -> S4
        let c = Closure::successors(&d);
        // Stage 1's only successor is stage 4.
        assert_eq!(c.members(StageId(0)).collect::<Vec<_>>(), vec![StageId(3)]);
        // Stage 2's successors are stages 3 and 4.
        assert_eq!(
            c.members(StageId(1)).collect::<Vec<_>>(),
            vec![StageId(2), StageId(3)]
        );
    }

    #[test]
    fn fig1_persists_intermediates() {
        let d = fig1();
        let b_rdd = d.stage(StageId(0)).output;
        assert!(d.rdd(b_rdd).cached);
        // Final output not persisted.
        let f_rdd = d.stage(StageId(3)).output;
        assert!(!d.rdd(f_rdd).cached);
    }

    #[test]
    fn tiny_chain_valid() {
        let d = tiny_chain(4, 1000);
        assert_eq!(d.num_stages(), 2);
        assert_eq!(d.stage(StageId(1)).parents, vec![StageId(0)]);
    }
}
