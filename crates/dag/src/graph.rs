//! Graph algorithms over [`JobDag`]: reachability closures, critical paths,
//! depth — the structural quantities every DAG-aware policy consumes.

// StageId mints and critical-path lengths: bounded by DAG size.
#![allow(clippy::cast_possible_truncation)]

use crate::dag::JobDag;
use crate::ids::StageId;
use crate::resources::SimTime;

/// Transitive successor closure: for each stage, the set of stages that
/// cannot start before it finishes (the paper's `SuccessorSet_i`).
///
/// Returned as a dense bitset per stage (`Vec<Vec<bool>>` indexed by stage),
/// computed in reverse topological order in `O(V·E/64)` via u64 word OR.
#[derive(Clone, Debug)]
pub struct Closure {
    words: Vec<Vec<u64>>,
    n: usize,
}

impl Closure {
    /// Successor closure (descendants) of every stage.
    pub fn successors(dag: &JobDag) -> Closure {
        Self::build(dag, false)
    }

    /// Ancestor closure of every stage.
    pub fn ancestors(dag: &JobDag) -> Closure {
        Self::build(dag, true)
    }

    fn build(dag: &JobDag, ancestors: bool) -> Closure {
        let n = dag.num_stages();
        let w = n.div_ceil(64);
        let mut words = vec![vec![0u64; w]; n];
        let order: Vec<StageId> = if ancestors {
            dag.topo_order().to_vec()
        } else {
            dag.topo_order().iter().rev().copied().collect()
        };
        for s in order {
            // Collect neighbor ids first to avoid aliasing `words`.
            let nbrs: Vec<StageId> = if ancestors {
                dag.parents(s).to_vec()
            } else {
                dag.children(s).to_vec()
            };
            let mut acc = vec![0u64; w];
            for nb in nbrs {
                acc[nb.index() / 64] |= 1u64 << (nb.index() % 64);
                for (a, b) in acc.iter_mut().zip(words[nb.index()].iter()) {
                    *a |= *b;
                }
            }
            words[s.index()] = acc;
        }
        Closure { words, n }
    }

    /// Is `b` in the closure of `a`?
    pub fn contains(&self, a: StageId, b: StageId) -> bool {
        (self.words[a.index()][b.index() / 64] >> (b.index() % 64)) & 1 == 1
    }

    /// Iterate members of `a`'s closure in id order.
    pub fn members(&self, a: StageId) -> impl Iterator<Item = StageId> + '_ {
        let row = &self.words[a.index()];
        (0..self.n)
            .filter(move |i| (row[i / 64] >> (i % 64)) & 1 == 1)
            .map(|i| StageId(i as u32))
    }

    /// Number of members in `a`'s closure.
    pub fn count(&self, a: StageId) -> usize {
        self.words[a.index()]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }
}

/// Per-stage critical-path metrics, with a pluggable per-stage "length".
///
/// `bottom_level[i]` = longest path from the start of stage `i` to the end of
/// the DAG, *including* stage `i` itself; `top_level[i]` = longest path from
/// job start to the start of stage `i`. The classic critical-path scheduler
/// [Graham 1969] ranks ready stages by descending bottom level.
#[derive(Clone, Debug)]
pub struct CriticalPath {
    pub bottom_level: Vec<u64>,
    pub top_level: Vec<u64>,
}

impl CriticalPath {
    /// Compute with `len(stage)` as each stage's path contribution. For wall
    /// clock use ideal stage duration; for Eq. (6)-flavoured ranks use work.
    pub fn compute(dag: &JobDag, len: impl Fn(StageId) -> u64) -> CriticalPath {
        let n = dag.num_stages();
        let mut bottom = vec![0u64; n];
        for &s in dag.topo_order().iter().rev() {
            let best_child = dag
                .children(s)
                .iter()
                .map(|c| bottom[c.index()])
                .max()
                .unwrap_or(0);
            bottom[s.index()] = len(s) + best_child;
        }
        let mut top = vec![0u64; n];
        for &s in dag.topo_order() {
            let best_parent = dag
                .parents(s)
                .iter()
                .map(|p| top[p.index()] + len(*p))
                .max()
                .unwrap_or(0);
            top[s.index()] = best_parent;
        }
        CriticalPath {
            bottom_level: bottom,
            top_level: top,
        }
    }

    /// Length of the whole critical path.
    pub fn length(&self) -> u64 {
        self.bottom_level.iter().copied().max().unwrap_or(0)
    }
}

/// Ideal duration of a stage given unbounded executors: all tasks run in
/// parallel, so the stage takes its longest task's compute time. A lower
/// bound used by critical-path ranking and the optimality-gap study.
pub fn ideal_stage_duration(dag: &JobDag, s: StageId) -> SimTime {
    let st = dag.stage(s);
    (0..st.num_tasks)
        .map(|k| st.task_cpu_ms(k))
        .max()
        .unwrap_or(0)
}

/// DAG depth: number of stages on the longest chain.
pub fn depth(dag: &JobDag) -> usize {
    let cp = CriticalPath::compute(dag, |_| 1);
    cp.length() as usize
}

/// Stages that become runnable given a set of completed stages.
pub fn ready_stages(dag: &JobDag, completed: &[bool]) -> Vec<StageId> {
    dag.stage_ids()
        .filter(|s| !completed[s.index()] && dag.parents(*s).iter().all(|p| completed[p.index()]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DagBuilder;

    /// chain: s0 -> s1 -> s2 ; and s3 independent
    fn chain_plus() -> JobDag {
        let mut b = DagBuilder::new("c");
        let (_, r0) = b.stage("s0").tasks(2).demand_cpus(1).cpu_ms(100).build();
        let (_, r1) = b
            .stage("s1")
            .tasks(2)
            .demand_cpus(1)
            .cpu_ms(200)
            .reads_narrow(r0)
            .build();
        let _ = b
            .stage("s2")
            .tasks(2)
            .demand_cpus(1)
            .cpu_ms(300)
            .reads_wide(r1)
            .build();
        let _ = b.stage("s3").tasks(1).demand_cpus(1).cpu_ms(50).build();
        b.build().unwrap()
    }

    #[test]
    fn successor_closure_is_transitive() {
        let d = chain_plus();
        let c = Closure::successors(&d);
        assert!(c.contains(StageId(0), StageId(1)));
        assert!(c.contains(StageId(0), StageId(2)));
        assert!(!c.contains(StageId(0), StageId(3)));
        assert!(!c.contains(StageId(2), StageId(0)));
        assert_eq!(c.count(StageId(0)), 2);
        assert_eq!(c.count(StageId(3)), 0);
        let members: Vec<_> = c.members(StageId(0)).collect();
        assert_eq!(members, vec![StageId(1), StageId(2)]);
    }

    #[test]
    fn ancestor_closure_mirrors_successors() {
        let d = chain_plus();
        let s = Closure::successors(&d);
        let a = Closure::ancestors(&d);
        for x in d.stage_ids() {
            for y in d.stage_ids() {
                assert_eq!(s.contains(x, y), a.contains(y, x), "{x} {y}");
            }
        }
    }

    #[test]
    fn critical_path_levels() {
        let d = chain_plus();
        let cp = CriticalPath::compute(&d, |s| d.stage(s).cpu_ms);
        assert_eq!(cp.bottom_level[0], 600);
        assert_eq!(cp.bottom_level[2], 300);
        assert_eq!(cp.bottom_level[3], 50);
        assert_eq!(cp.top_level[0], 0);
        assert_eq!(cp.top_level[2], 300);
        assert_eq!(cp.length(), 600);
    }

    #[test]
    fn depth_counts_longest_chain() {
        let d = chain_plus();
        assert_eq!(depth(&d), 3);
    }

    #[test]
    fn ready_stages_tracks_completion() {
        let d = chain_plus();
        let mut done = vec![false; 4];
        assert_eq!(ready_stages(&d, &done), vec![StageId(0), StageId(3)]);
        done[0] = true;
        assert_eq!(ready_stages(&d, &done), vec![StageId(1), StageId(3)]);
        done[3] = true;
        done[1] = true;
        assert_eq!(ready_stages(&d, &done), vec![StageId(2)]);
    }

    #[test]
    fn closure_works_past_64_stages() {
        // Long chain exercising multi-word bitsets.
        let mut b = DagBuilder::new("long");
        let (_, mut prev) = b.stage("s0").tasks(1).demand_cpus(1).cpu_ms(1).build();
        for i in 1..130 {
            let (_, r) = b
                .stage(&format!("s{i}"))
                .tasks(1)
                .demand_cpus(1)
                .cpu_ms(1)
                .reads_narrow(prev)
                .build();
            prev = r;
        }
        let d = b.build().unwrap();
        let c = Closure::successors(&d);
        assert_eq!(c.count(StageId(0)), 129);
        assert!(c.contains(StageId(0), StageId(129)));
        assert!(c.contains(StageId(64), StageId(65)));
        assert!(!c.contains(StageId(129), StageId(0)));
    }
}
