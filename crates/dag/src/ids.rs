//! Strongly-typed identifiers for DAG entities.
//!
//! Using newtypes instead of bare integers keeps the simulator honest: a
//! stage index can never be confused with an RDD index, and `BlockId` is a
//! value type cheap enough to key every cache-policy map with.

use std::fmt;

/// Identifier of a stage within one [`crate::JobDag`].
///
/// Stage ids are dense (`0..dag.num_stages()`) and assigned in the order the
/// stages were declared, which for all built-in workloads equals Spark's
/// submission order. FIFO scheduling and MRD's "stage reference distance"
/// are both defined over this order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StageId(pub u32);

/// Identifier of an RDD within one [`crate::JobDag`]. Dense, like stages.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RddId(pub u32);

/// One partition (block) of an RDD — the unit of caching, HDFS placement
/// and task input. Matches Spark's `RDDBlockId(rddId, splitIndex)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId {
    pub rdd: RddId,
    pub partition: u32,
}

/// One task: the `index`-th partition of `stage`'s work.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId {
    pub stage: StageId,
    pub index: u32,
}

impl StageId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RddId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl BlockId {
    #[inline]
    pub fn new(rdd: RddId, partition: u32) -> Self {
        Self { rdd, partition }
    }
}

impl TaskId {
    #[inline]
    pub fn new(stage: StageId, index: u32) -> Self {
        Self { stage, index }
    }
}

impl fmt::Debug for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}
impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Debug for RddId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}
impl fmt::Display for RddId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.rdd, self.partition)
    }
}
impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.rdd, self.partition)
    }
}

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.stage, self.index)
    }
}
impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.stage, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_id_ordering_groups_by_rdd_then_partition() {
        let a = BlockId::new(RddId(1), 9);
        let b = BlockId::new(RddId(2), 0);
        assert!(a < b);
        let c = BlockId::new(RddId(1), 10);
        assert!(a < c);
    }

    #[test]
    fn display_formats_are_compact() {
        assert_eq!(StageId(3).to_string(), "S3");
        assert_eq!(BlockId::new(RddId(2), 1).to_string(), "R2#1");
        assert_eq!(TaskId::new(StageId(4), 7).to_string(), "S4.7");
    }

    #[test]
    fn ids_are_copy_and_hashable() {
        // lint: allow(hash-ordered): the test's whole point is that ids are hashable
        use std::collections::HashSet;
        // lint: allow(hash-ordered): same hashability assertion
        let mut s = HashSet::new();
        let t = TaskId::new(StageId(0), 0);
        s.insert(t);
        assert!(s.contains(&t));
    }
}
