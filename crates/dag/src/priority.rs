//! Stage priority values — Eq. (6) of the paper:
//!
//! ```text
//! pv_i = w_i + Σ_{j ∈ SuccessorSet_i} w_j
//! ```
//!
//! where `w_i` is the *currently unprocessed* workload of stage `i` in
//! resource-duration units (vCPU-ms here, vCPU-minutes in the paper) and
//! `SuccessorSet_i` is the transitive successor closure. `w_i` shrinks as
//! tasks are *launched* — Table III decrements `w_2` from 36 to 24 the
//! moment the first stage-2 task is assigned — so [`PriorityTracker`]
//! mirrors exactly that bookkeeping and is shared by the Dagon scheduler
//! (Alg. 1) and the LRP cache (Def. 1).

// StageId mints from enumerate(): bounded by DAG size.
#![allow(clippy::cast_possible_truncation)]

use crate::dag::JobDag;
use crate::graph::Closure;
use crate::ids::{StageId, TaskId};

/// Work accounting for one stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct Work {
    /// Unprocessed workload `w_i` in vCPU-ms: total work of tasks not yet
    /// launched.
    pub remaining: u64,
    /// Initial `w_i` at submission.
    pub initial: u64,
}

/// Live `pv_i` tracking over one job.
///
/// Work estimates may come from ground truth or from the AppProfiler's
/// noisy estimates — the tracker doesn't care, it just maintains Eq. (6)
/// under task-launch decrements and supports O(ancestors) incremental
/// updates.
#[derive(Clone, Debug)]
pub struct PriorityTracker {
    work: Vec<Work>,
    /// pv_i cache.
    pv: Vec<u64>,
    /// Ancestor closure: launching a task of stage j changes pv_i for every
    /// i with j ∈ succ*(i), i.e. every ancestor of j (plus j itself).
    ancestors: Closure,
}

impl PriorityTracker {
    /// Build from per-task work given by `task_work(stage, index)` in
    /// vCPU-ms. Pass `|s, k| dag.stage(s).task_work(k)` for ground truth.
    pub fn new(dag: &JobDag, task_work: impl Fn(StageId, u32) -> u64) -> Self {
        let n = dag.num_stages();
        let mut work = vec![Work::default(); n];
        for s in dag.stage_ids() {
            let total: u64 = (0..dag.stage(s).num_tasks).map(|k| task_work(s, k)).sum();
            work[s.index()] = Work {
                remaining: total,
                initial: total,
            };
        }
        let successors = Closure::successors(dag);
        let mut pv = vec![0u64; n];
        for s in dag.stage_ids() {
            pv[s.index()] = work[s.index()].remaining
                + successors
                    .members(s)
                    .map(|j| work[j.index()].remaining)
                    .sum::<u64>();
        }
        let ancestors = Closure::ancestors(dag);
        Self {
            work,
            pv,
            ancestors,
        }
    }

    /// Ground-truth tracker straight from the DAG's own durations.
    pub fn from_dag(dag: &JobDag) -> Self {
        Self::new(dag, |s, k| dag.stage(s).task_work(k))
    }

    /// Current `pv_i`.
    #[inline]
    pub fn pv(&self, s: StageId) -> u64 {
        self.pv[s.index()]
    }

    /// Current unprocessed workload `w_i`.
    #[inline]
    pub fn remaining_work(&self, s: StageId) -> u64 {
        self.work[s.index()].remaining
    }

    /// All (stage, pv) pairs.
    pub fn snapshot(&self) -> Vec<(StageId, u64)> {
        self.pv
            .iter()
            .enumerate()
            .map(|(i, &p)| (StageId(i as u32), p))
            .collect()
    }

    /// Record that `task` was launched, consuming `work` vCPU-ms from its
    /// stage. Decrements `w_stage` and the pv of the stage and all its
    /// ancestors (Table III's per-step update).
    pub fn on_task_launched(&mut self, task: TaskId, work: u64) {
        let s = task.stage;
        let delta = work.min(self.work[s.index()].remaining);
        self.work[s.index()].remaining -= delta;
        self.pv[s.index()] = self.pv[s.index()].saturating_sub(delta);
        for a in self.ancestors.members(s).collect::<Vec<_>>() {
            self.pv[a.index()] = self.pv[a.index()].saturating_sub(delta);
        }
    }

    /// Undo a launch (speculative copy killed before contributing, or a
    /// failed task re-queued): restore `work` vCPU-ms to the stage.
    pub fn on_task_requeued(&mut self, task: TaskId, work: u64) {
        let s = task.stage;
        self.work[s.index()].remaining =
            (self.work[s.index()].remaining + work).min(self.work[s.index()].initial);
        self.pv[s.index()] += work;
        for a in self.ancestors.members(s).collect::<Vec<_>>() {
            self.pv[a.index()] += work;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DagBuilder;
    use crate::examples::fig1;
    use crate::MIN_MS;

    #[test]
    fn fig1_initial_priorities_match_table_iii() {
        // Table III header row: w1=48, pv1=52, w2=36, pv2=64 (vCPU-minutes).
        let d = fig1();
        let t = PriorityTracker::from_dag(&d);
        assert_eq!(t.remaining_work(StageId(0)) / MIN_MS, 48);
        assert_eq!(t.pv(StageId(0)) / MIN_MS, 52);
        assert_eq!(t.remaining_work(StageId(1)) / MIN_MS, 36);
        assert_eq!(t.pv(StageId(1)) / MIN_MS, 64);
        // pv3 = w3 + w4 = 24 + 4 = 28; pv4 = 4.
        assert_eq!(t.pv(StageId(2)) / MIN_MS, 28);
        assert_eq!(t.pv(StageId(3)) / MIN_MS, 4);
    }

    #[test]
    fn fig1_launch_updates_replay_table_iii() {
        // Table III steps 1-4.
        let d = fig1();
        let mut t = PriorityTracker::from_dag(&d);
        let s1 = StageId(0); // paper's "stage 1"
        let s2 = StageId(1); // paper's "stage 2"
                             // Step 1: one stage-2 task ⟨6 vCPU, 2 min⟩ = 12 vCPU-min.
        t.on_task_launched(TaskId::new(s2, 0), 12 * MIN_MS);
        assert_eq!(t.remaining_work(s2) / MIN_MS, 24);
        assert_eq!(t.pv(s2) / MIN_MS, 52);
        assert_eq!(t.pv(s1) / MIN_MS, 52); // unchanged: s2 not a successor of s1
                                           // Step 2: one stage-1 task ⟨4 vCPU, 4 min⟩ = 16 vCPU-min.
        t.on_task_launched(TaskId::new(s1, 0), 16 * MIN_MS);
        assert_eq!(t.remaining_work(s1) / MIN_MS, 32);
        assert_eq!(t.pv(s1) / MIN_MS, 36);
        // Step 3: another stage-2 task.
        t.on_task_launched(TaskId::new(s2, 1), 12 * MIN_MS);
        assert_eq!(t.pv(s2) / MIN_MS, 40);
        // Step 4: final stage-2 task.
        t.on_task_launched(TaskId::new(s2, 2), 12 * MIN_MS);
        assert_eq!(t.remaining_work(s2), 0);
        assert_eq!(t.pv(s2) / MIN_MS, 28);
    }

    #[test]
    fn launch_decrements_ancestors_priority() {
        // chain a -> b: launching b's task lowers pv_a too.
        let mut bld = DagBuilder::new("c");
        let (_, r) = bld.stage("a").tasks(1).demand_cpus(1).cpu_ms(1000).build();
        let _ = bld
            .stage("b")
            .tasks(2)
            .demand_cpus(1)
            .cpu_ms(1000)
            .reads_wide(r)
            .build();
        let d = bld.build().unwrap();
        let mut t = PriorityTracker::from_dag(&d);
        assert_eq!(t.pv(StageId(0)), 3000);
        t.on_task_launched(TaskId::new(StageId(1), 0), 1000);
        assert_eq!(t.pv(StageId(0)), 2000);
        assert_eq!(t.pv(StageId(1)), 1000);
    }

    #[test]
    fn requeue_restores_work() {
        let mut bld = DagBuilder::new("c");
        let _ = bld.stage("a").tasks(2).demand_cpus(2).cpu_ms(500).build();
        let d = bld.build().unwrap();
        let mut t = PriorityTracker::from_dag(&d);
        let w0 = t.pv(StageId(0));
        t.on_task_launched(TaskId::new(StageId(0), 0), 1000);
        t.on_task_requeued(TaskId::new(StageId(0), 0), 1000);
        assert_eq!(t.pv(StageId(0)), w0);
        assert_eq!(t.remaining_work(StageId(0)), w0);
    }

    #[test]
    fn launch_work_saturates_at_zero() {
        let mut bld = DagBuilder::new("c");
        let _ = bld.stage("a").tasks(1).demand_cpus(1).cpu_ms(100).build();
        let d = bld.build().unwrap();
        let mut t = PriorityTracker::from_dag(&d);
        t.on_task_launched(TaskId::new(StageId(0), 0), 10_000);
        assert_eq!(t.remaining_work(StageId(0)), 0);
        assert_eq!(t.pv(StageId(0)), 0);
    }
}
