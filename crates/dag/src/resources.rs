//! Time and resource units shared across the workspace.

// Fit counts are clamped to u32::MAX before the cast narrows.
#![allow(clippy::cast_possible_truncation)]

/// Simulated time in milliseconds since job submission.
pub type SimTime = u64;

/// One second in [`SimTime`] units.
pub const SEC_MS: SimTime = 1_000;
/// One minute in [`SimTime`] units. The paper measures stage workloads in
/// vCPU-minutes; we keep everything in vCPU-milliseconds internally.
pub const MIN_MS: SimTime = 60_000;

/// A resource vector: the `⟨resource⟩` half of the paper's
/// `⟨resource, duration⟩` task annotation.
///
/// The paper's Spark port is CPU-only ("Spark allows workloads to specify
/// only their resource demands on CPU"), but executors also have a memory
/// budget that bounds concurrent tasks, so we carry both.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Resources {
    /// Virtual CPUs.
    pub cpus: u32,
    /// Memory in MiB.
    pub mem_mb: u64,
}

impl Resources {
    pub const ZERO: Resources = Resources { cpus: 0, mem_mb: 0 };

    #[inline]
    pub fn new(cpus: u32, mem_mb: u64) -> Self {
        Self { cpus, mem_mb }
    }

    /// CPU-only demand with a nominal per-core memory share (1 GiB/core),
    /// convenient for workload generators that don't care about memory.
    #[inline]
    pub fn cpus(cpus: u32) -> Self {
        Self {
            cpus,
            mem_mb: cpus as u64 * 1024,
        }
    }

    /// Component-wise `self + other`.
    #[inline]
    pub fn plus(self, other: Resources) -> Resources {
        Resources {
            cpus: self.cpus + other.cpus,
            mem_mb: self.mem_mb + other.mem_mb,
        }
    }

    /// Component-wise saturating `self - other`.
    #[inline]
    pub fn minus(self, other: Resources) -> Resources {
        Resources {
            cpus: self.cpus.saturating_sub(other.cpus),
            mem_mb: self.mem_mb.saturating_sub(other.mem_mb),
        }
    }

    /// Does a demand of `other` fit within `self`?
    #[inline]
    pub fn fits(self, other: Resources) -> bool {
        other.cpus <= self.cpus && other.mem_mb <= self.mem_mb
    }

    /// How many copies of `demand` fit (the executor-throughput question
    /// behind the paper's "dynamic resource configuration" contribution)?
    #[inline]
    pub fn capacity_for(self, demand: Resources) -> u32 {
        if demand.cpus == 0 && demand.mem_mb == 0 {
            return u32::MAX;
        }
        let by_cpu = self.cpus.checked_div(demand.cpus).unwrap_or(u32::MAX);
        let by_mem = self
            .mem_mb
            .checked_div(demand.mem_mb)
            .map_or(u32::MAX, |m| m.min(u32::MAX as u64) as u32);
        by_cpu.min(by_mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_is_componentwise() {
        let cap = Resources::new(4, 8192);
        assert!(cap.fits(Resources::new(4, 8192)));
        assert!(!cap.fits(Resources::new(5, 1)));
        assert!(!cap.fits(Resources::new(1, 9000)));
        assert!(cap.fits(Resources::ZERO));
    }

    #[test]
    fn capacity_for_takes_binding_dimension() {
        let cap = Resources::new(16, 8192);
        // CPU-bound: 16/4 = 4 even though memory would allow 8.
        assert_eq!(cap.capacity_for(Resources::new(4, 1024)), 4);
        // Memory-bound: 8192/4096 = 2 even though CPUs would allow 16.
        assert_eq!(cap.capacity_for(Resources::new(1, 4096)), 2);
        assert_eq!(cap.capacity_for(Resources::ZERO), u32::MAX);
    }

    #[test]
    fn minus_saturates() {
        let a = Resources::new(2, 100);
        let b = Resources::new(5, 50);
        assert_eq!(a.minus(b), Resources::new(0, 50));
    }

    #[test]
    fn plus_adds() {
        assert_eq!(
            Resources::new(1, 2).plus(Resources::new(3, 4)),
            Resources::new(4, 6)
        );
    }
}
