//! Per-stage estimates the AppProfiler hands to schedulers.
//!
//! The paper's AppProfiler "learns the application DAG and estimates the
//! task duration and resource demand for each stage" from a small profiling
//! run plus online statistics (§IV). Schedulers plan with these *estimates*;
//! the simulator executes with ground truth — so estimation error degrades
//! scheduling quality exactly as it would in the real system.

// Work estimates: `.round()`ed nonnegative ms products fit u64.
#![allow(clippy::cast_possible_truncation)]

use crate::dag::JobDag;
use crate::ids::StageId;
use crate::resources::Resources;

/// Estimated per-stage task duration and demand.
#[derive(Clone, Debug, PartialEq)]
pub struct StageEstimates {
    /// Estimated mean task compute time, ms, per stage.
    pub mean_task_ms: Vec<f64>,
    /// Estimated per-task resource demand per stage.
    pub demand: Vec<Resources>,
}

impl StageEstimates {
    /// Ground-truth estimates straight from the DAG (a perfect profiler).
    pub fn exact(dag: &JobDag) -> Self {
        Self {
            mean_task_ms: dag
                .stages()
                .iter()
                .map(|s| s.mean_task_cpu_ms() as f64)
                .collect(),
            demand: dag.stages().iter().map(|s| s.demand).collect(),
        }
    }

    /// Estimated work of one task of stage `s` in vCPU-ms.
    pub fn task_work(&self, s: StageId) -> u64 {
        (self.demand[s.index()].cpus as f64 * self.mean_task_ms[s.index()])
            .round()
            .max(0.0) as u64
    }

    /// Estimated mean task duration of stage `s`, ms.
    pub fn mean_ms(&self, s: StageId) -> f64 {
        self.mean_task_ms[s.index()]
    }

    pub fn num_stages(&self) -> usize {
        self.mean_task_ms.len()
    }
}

#[cfg(test)]
// Replay values in these tests are set, not computed: exact float
// equality is the contract being asserted.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::examples::fig1;
    use crate::MIN_MS;

    #[test]
    fn exact_estimates_match_dag() {
        let d = fig1();
        let e = StageEstimates::exact(&d);
        assert_eq!(e.num_stages(), 4);
        assert_eq!(e.mean_ms(StageId(0)), (4 * MIN_MS) as f64);
        assert_eq!(e.task_work(StageId(0)) / MIN_MS, 16);
        assert_eq!(e.task_work(StageId(1)) / MIN_MS, 12);
        assert_eq!(e.demand[1].cpus, 6);
    }
}
