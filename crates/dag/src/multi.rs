//! Multi-tenant job sets: merge several jobs (with arrival times) into one
//! combined DAG the simulator can run.
//!
//! The paper deploys Dagon in a multi-tenant YARN cluster and notes that
//! the available resource capacity `RC` (Eq. 3) "often changes during
//! runtime" because of other tenants. Merging concurrent jobs into one DAG
//! — stages renumbered, source RDDs shared nothing, each job's roots
//! released at its arrival time — lets every scheduler in this workspace
//! handle inter-job contention with no special casing: FIFO degenerates to
//! arrival order, Fair to per-stage round-robin, and Dagon's Eq. (6)
//! priorities rank stages *across* jobs by remaining dependent work.
//!
//! This is the **static** multi-tenant path: the whole job set and every
//! arrival time must be known up front, baked into stage release times.
//! The **dynamic** alternative lives in `dagon-tenancy`: the same merged
//! DAG, but jobs are admitted live by `JobArrival` events (per-tenant
//! queues, admission control, closed-loop clients whose next arrival
//! depends on the previous completion — inexpressible statically). The two
//! are cross-tested: for a fixed open-loop job set under FIFO, the static
//! pre-merge and dynamic admission must produce identical per-job JCTs
//! (`tests/tenancy.rs::static_premerge_and_dynamic_admission_agree_under_fifo`).

use crate::dag::{DagBuilder, JobDag};
use crate::ids::{RddId, StageId};
use crate::rdd::RddSource;
use crate::resources::SimTime;
use crate::stage::DepKind;

/// Where one merged job's pieces landed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSlot {
    pub name: String,
    pub arrival_ms: SimTime,
    /// The job's stages in the merged DAG (contiguous, ascending).
    pub stages: Vec<StageId>,
}

/// A set of jobs with arrival times.
#[derive(Default)]
pub struct JobSet {
    jobs: Vec<(JobDag, SimTime)>,
}

impl JobSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a job arriving at `arrival_ms`.
    pub fn add(&mut self, dag: JobDag, arrival_ms: SimTime) -> &mut Self {
        self.jobs.push((dag, arrival_ms));
        self
    }

    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Merge into one DAG. Jobs are laid out in arrival order (stable for
    /// equal arrivals), so FIFO's stage-id order equals Spark's
    /// FIFO-across-jobs behaviour. Every stage of a job gets
    /// `release_ms = max(its own release, the job's arrival)`.
    pub fn merge(mut self) -> (JobDag, Vec<JobSlot>) {
        assert!(!self.jobs.is_empty(), "JobSet::merge on an empty set");
        self.jobs.sort_by_key(|(_, a)| *a);
        let mut b = DagBuilder::new("multi-tenant");
        let mut slots = Vec::new();
        for (job_idx, (dag, arrival)) in self.jobs.iter().enumerate() {
            let mut rdd_map: std::collections::BTreeMap<RddId, RddId> =
                std::collections::BTreeMap::new();
            let mut stages = Vec::new();
            for sid in dag.topo_order() {
                let st = dag.stage(*sid);
                // Recreate HDFS sources this stage reads (each job gets its
                // own copies; cross-job data sharing is out of scope).
                for input in &st.inputs {
                    let rdd = dag.rdd(input.rdd);
                    if matches!(rdd.source, RddSource::Hdfs) && !rdd_map.contains_key(&rdd.id) {
                        let new = b.hdfs_rdd_cached(
                            &format!("j{job_idx}_{}", rdd.name),
                            rdd.num_partitions,
                            rdd.block_mb,
                            rdd.cached,
                        );
                        rdd_map.insert(rdd.id, new);
                    }
                }
                let mut sb = b
                    .stage(&format!("j{job_idx}_{}", st.name))
                    .tasks(st.num_tasks)
                    .demand(st.demand)
                    .cpu_ms(st.cpu_ms)
                    .skew(st.skew.clone())
                    .output_mb(dag.rdd(st.output).block_mb)
                    .release_ms(st.release_ms.max(*arrival));
                if dag.rdd(st.output).cached {
                    sb = sb.cache_output();
                }
                for input in &st.inputs {
                    let mapped = rdd_map[&input.rdd];
                    sb = match input.kind {
                        DepKind::Narrow => sb.reads_narrow(mapped),
                        DepKind::Wide => sb.reads_wide(mapped),
                    };
                }
                let (new_stage, out) = sb.build();
                rdd_map.insert(st.output, out);
                stages.push(new_stage);
            }
            stages.sort_unstable();
            slots.push(JobSlot {
                name: dag.name().to_string(),
                arrival_ms: *arrival,
                stages,
            });
        }
        (b.build().expect("merged DAG is valid"), slots)
    }
}

/// Per-job completion time out of a merged run: the latest completion among
/// the job's stages, minus the job's arrival.
pub fn job_completion_ms(
    slot: &JobSlot,
    stage_completion: impl Fn(StageId) -> Option<SimTime>,
) -> Option<SimTime> {
    let mut latest = 0;
    for s in &slot.stages {
        latest = latest.max(stage_completion(*s)?);
    }
    Some(latest.saturating_sub(slot.arrival_ms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{fig1, tiny_chain};

    #[test]
    fn merge_preserves_per_job_structure() {
        let mut set = JobSet::new();
        set.add(fig1(), 0);
        set.add(tiny_chain(4, 500), 5_000);
        let (dag, slots) = set.merge();
        assert_eq!(dag.num_stages(), 4 + 2);
        assert_eq!(slots.len(), 2);
        assert_eq!(slots[0].stages.len(), 4);
        assert_eq!(slots[1].stages.len(), 2);
        // No cross-job dependencies.
        for s in &slots[1].stages {
            for p in dag.parents(*s) {
                assert!(slots[1].stages.contains(p), "cross-job parent {p}");
            }
        }
        // Arrival becomes the release time of the second job's stages.
        for s in &slots[1].stages {
            assert_eq!(dag.stage(*s).release_ms, 5_000);
        }
        for s in &slots[0].stages {
            assert_eq!(dag.stage(*s).release_ms, 0);
        }
    }

    #[test]
    fn merge_orders_jobs_by_arrival() {
        let mut set = JobSet::new();
        set.add(tiny_chain(2, 100), 9_000);
        set.add(fig1(), 0);
        let (dag, slots) = set.merge();
        // fig1 arrived first → occupies the low stage ids.
        assert_eq!(slots[0].name, "fig1");
        assert_eq!(slots[0].stages[0], StageId(0));
        assert!(slots[1].stages[0] > slots[0].stages[3]);
        assert_eq!(dag.num_stages(), 6);
    }

    #[test]
    fn job_completion_subtracts_arrival() {
        let mut set = JobSet::new();
        set.add(tiny_chain(2, 100), 1_000);
        let (_, slots) = set.merge();
        let jct = job_completion_ms(&slots[0], |_| Some(4_000)).unwrap();
        assert_eq!(jct, 3_000);
        // Missing completion → None.
        assert_eq!(job_completion_ms(&slots[0], |_| None), None);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_set_panics() {
        let _ = JobSet::new().merge();
    }
}
