//! Property tests for the DAG substrate: structural invariants that every
//! generated DAG must satisfy, and the algebra of priority values.

// Test-only id mints from small generated counts.
#![allow(clippy::cast_possible_truncation)]

use dagon_dag::generate::{random_dag, GenParams};
use dagon_dag::graph::{depth, ready_stages, Closure, CriticalPath};
use dagon_dag::{PriorityTracker, StageId, TaskId};
use proptest::prelude::*;

fn params() -> impl Strategy<Value = (GenParams, u64)> {
    (2usize..30, 1usize..4, 0.0f64..1.0, any::<u64>()).prop_map(
        |(stages, max_parents, wide_prob, seed)| {
            (
                GenParams {
                    stages,
                    max_parents,
                    wide_prob,
                    ..Default::default()
                },
                seed,
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Topological order: every parent precedes its children; depth is
    /// bounded by the stage count; roots are exactly the parentless stages.
    #[test]
    fn topo_and_depth_invariants((p, seed) in params()) {
        let dag = random_dag(&p, seed);
        let topo = dag.topo_order();
        prop_assert_eq!(topo.len(), dag.num_stages());
        let pos: std::collections::BTreeMap<_, _> =
            topo.iter().enumerate().map(|(i, s)| (*s, i)).collect();
        for s in dag.stage_ids() {
            for par in dag.parents(s) {
                prop_assert!(pos[par] < pos[&s]);
            }
        }
        prop_assert!(depth(&dag) <= dag.num_stages());
        for r in dag.roots() {
            prop_assert!(dag.parents(r).is_empty());
        }
    }

    /// Successor closure is transitive and antisymmetric (acyclic).
    #[test]
    fn closure_is_a_strict_partial_order((p, seed) in params()) {
        let dag = random_dag(&p, seed);
        let c = Closure::successors(&dag);
        for a in dag.stage_ids() {
            prop_assert!(!c.contains(a, a), "{a} reaches itself");
            for b in c.members(a).collect::<Vec<_>>() {
                prop_assert!(!c.contains(b, a), "cycle {a} <-> {b}");
                for d in c.members(b).collect::<Vec<_>>() {
                    prop_assert!(c.contains(a, d), "transitivity {a}->{b}->{d}");
                }
            }
        }
    }

    /// pv decomposition: pv_i == w_i + Σ over closure members' w_j, at any
    /// point during a random launch sequence.
    #[test]
    fn priority_value_equals_closure_sum((p, seed) in params(), launches in 0usize..40) {
        let dag = random_dag(&p, seed);
        let mut tracker = PriorityTracker::from_dag(&dag);
        let closure = Closure::successors(&dag);
        // Launch a pseudo-random sequence of tasks.
        let mut s = seed;
        for _ in 0..launches {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let stage = StageId((s >> 33) as u32 % dag.num_stages() as u32);
            let st = dag.stage(stage);
            let k = (s >> 21) as u32 % st.num_tasks;
            tracker.on_task_launched(TaskId::new(stage, k), st.task_work(k));
        }
        for i in dag.stage_ids() {
            let expect: u64 = tracker.remaining_work(i)
                + closure.members(i).map(|j| tracker.remaining_work(j)).sum::<u64>();
            prop_assert_eq!(tracker.pv(i), expect, "stage {}", i);
        }
    }

    /// Critical path: bottom levels decrease along edges; the CP length is
    /// an upper bound on every bottom level and at least the max stage len.
    #[test]
    fn critical_path_monotone((p, seed) in params()) {
        let dag = random_dag(&p, seed);
        let cp = CriticalPath::compute(&dag, |s| dag.stage(s).cpu_ms);
        for s in dag.stage_ids() {
            for c in dag.children(s) {
                prop_assert!(cp.bottom_level[s.index()] > cp.bottom_level[c.index()]);
            }
            prop_assert!(cp.length() >= cp.bottom_level[s.index()]);
        }
    }

    /// Completing stages in topological order keeps `ready_stages` sound:
    /// every reported stage has all parents complete, and eventually all
    /// stages complete.
    #[test]
    fn ready_stages_simulation((p, seed) in params()) {
        let dag = random_dag(&p, seed);
        let mut done = vec![false; dag.num_stages()];
        let mut completed = 0;
        while completed < dag.num_stages() {
            let ready = ready_stages(&dag, &done);
            prop_assert!(!ready.is_empty(), "deadlock with {completed} done");
            for s in &ready {
                prop_assert!(dag.parents(*s).iter().all(|p2| done[p2.index()]));
            }
            done[ready[0].index()] = true;
            completed += 1;
        }
    }
}
