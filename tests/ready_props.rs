//! Differential properties for PR 6's incremental scheduling hot path:
//! the ready list and the lazy free-executor heap on [`ClusterView`].
//!
//! Two layers of coverage:
//!
//! * **View-level**: generated histories interleaving schedulability flips
//!   with resource deltas (consume/release/crash/restart), checked after
//!   every step against the brute-force oracles
//!   ([`ClusterView::rebuilt_free_execs`] and a shadow-model ready set).
//!   This reaches orderings real workloads never produce — e.g. a stage
//!   toggled schedulable while the executor heap is full of stale entries
//!   from a crash-restart cycle.
//! * **Sim-level**: random workloads and chaos fault plans run end-to-end.
//!   These tests compile in the dev profile, so the simulator's own
//!   debug assertions (`check_ready_consistency` / `check_free_consistency`
//!   at every scheduling opportunity) act as the differential oracle for
//!   the full event loop; on top the properties pin determinism and the
//!   O(1)-rebuild guarantees the CI bench guard relies on.

// Test-only id mints from small generated counts.
#![allow(clippy::cast_possible_truncation)]

use dagon_cluster::event::ViewDelta;
use dagon_cluster::view::ClusterView;
use dagon_cluster::{ClusterConfig, ExecId, FaultPlan};
use dagon_core::{run_system, System};
use dagon_dag::Resources;
use dagon_workloads::{Scale, Workload};
use proptest::prelude::*;

const N_EXEC: usize = 5;
const N_STAGE: usize = 8;
const CAPACITY: Resources = Resources {
    cpus: 2,
    mem_mb: 2048,
};

/// Abstract step of a generated history: the cview_props delta alphabet
/// plus schedulability flips, so ready-list and free-heap maintenance are
/// exercised *interleaved* the way the simulator drives them.
#[derive(Clone, Debug)]
enum Step {
    Consume {
        e: usize,
        cpus: u32,
        mem_mb: u64,
    },
    Release {
        e: usize,
    },
    Down {
        e: usize,
    },
    Up {
        e: usize,
    },
    /// Flip stage `s % N_STAGE` schedulable/unschedulable.
    Flip {
        s: usize,
        on: bool,
    },
    /// Drain the lazy heap into the compacted free list (what the
    /// simulator does right before handing schedulers a view).
    Compact,
}

/// Weighted step kinds (no `prop_oneof` in the vendored shim, so the
/// weights are an integer draw): consume 3 / release 2 / down 1 / up 1 /
/// flip 3 / compact 2.
fn step_strategy() -> impl Strategy<Value = Step> {
    (0usize..12, 0..N_EXEC.max(N_STAGE), 1u32..=2, 128u64..=1024).prop_map(
        |(kind, i, cpus, mem_mb)| match kind {
            0..=2 => Step::Consume {
                e: i % N_EXEC,
                cpus,
                mem_mb,
            },
            3..=4 => Step::Release { e: i % N_EXEC },
            5 => Step::Down { e: i % N_EXEC },
            6 => Step::Up { e: i % N_EXEC },
            7..=9 => Step::Flip {
                s: i % N_STAGE,
                on: cpus == 1,
            },
            _ => Step::Compact,
        },
    )
}

/// Shadow model: per-executor outstanding demands + usability (for valid
/// delta lowering, as in `cview_props`) plus the brute-force ready set.
struct Model {
    outstanding: Vec<Vec<Resources>>,
    free: Vec<Resources>,
    usable: Vec<bool>,
    schedulable: Vec<bool>,
}

impl Model {
    fn new() -> Self {
        Self {
            outstanding: vec![Vec::new(); N_EXEC],
            free: vec![CAPACITY; N_EXEC],
            usable: vec![true; N_EXEC],
            schedulable: vec![false; N_STAGE],
        }
    }

    /// The oracle ready list: ascending ids of schedulable stages.
    fn ready(&self) -> Vec<u32> {
        self.schedulable
            .iter()
            .enumerate()
            .filter_map(|(i, &on)| on.then_some(i as u32))
            .collect()
    }

    /// Lower an abstract step into the concrete view mutation, keeping the
    /// history valid (consumes clamped to free, releases FIFO, down/up
    /// only from the opposite state).
    fn drive(&mut self, view: &mut ClusterView, step: &Step) {
        match *step {
            Step::Consume { e, cpus, mem_mb } => {
                if !self.usable[e] {
                    return;
                }
                let demand = Resources {
                    cpus: cpus.min(self.free[e].cpus),
                    mem_mb: mem_mb.min(self.free[e].mem_mb),
                };
                if demand == Resources::ZERO {
                    return;
                }
                self.free[e] = self.free[e].minus(demand);
                self.outstanding[e].push(demand);
                view.apply(ViewDelta::Consume {
                    exec: ExecId(e as u32),
                    demand,
                });
            }
            Step::Release { e } => {
                if self.outstanding[e].is_empty() {
                    return;
                }
                let demand = self.outstanding[e].remove(0);
                self.free[e] = self.free[e].plus(demand);
                view.apply(ViewDelta::Release {
                    exec: ExecId(e as u32),
                    demand,
                });
            }
            Step::Down { e } => {
                if !self.usable[e] {
                    return;
                }
                self.usable[e] = false;
                view.apply(ViewDelta::ExecDown {
                    exec: ExecId(e as u32),
                });
            }
            Step::Up { e } => {
                if self.usable[e] {
                    return;
                }
                self.usable[e] = true;
                view.apply(ViewDelta::ExecUp {
                    exec: ExecId(e as u32),
                });
            }
            Step::Flip { s, on } => {
                self.schedulable[s] = on;
                view.set_stage_schedulable(s, on);
            }
            Step::Compact => view.compact_free_execs(),
        }
    }
}

proptest! {
    /// After every step of any valid interleaved history, the incremental
    /// ready list equals the brute-force scan of the schedulable flags,
    /// and every compaction leaves the free list equal to a from-scratch
    /// rebuild — with exactly one ready-list build for the whole run.
    #[test]
    fn incremental_ready_and_free_match_oracles(
        steps in proptest::collection::vec(step_strategy(), 0..250),
    ) {
        let mut view = ClusterView::new(N_EXEC, CAPACITY);
        view.init_ready_list(vec![false; N_STAGE]);
        let mut model = Model::new();
        for step in &steps {
            model.drive(&mut view, step);
            prop_assert_eq!(view.ready_stages(), model.ready().as_slice());
            view.compact_free_execs();
            prop_assert_eq!(view.free_execs(), view.rebuilt_free_execs().as_slice());
            prop_assert!(view.check_free_consistency());
        }
        prop_assert_eq!(view.ready_list_rebuilds(), 1);
        // Lazy deletion only ever skips entries, it never drops live ones:
        // every stale skip was one of the examined pops.
        prop_assert!(view.ect_heap_stale() <= view.ect_heap_pops());
    }

    /// Compaction is memoized on the free-set generation: a second drain
    /// with no membership change in between examines zero heap entries.
    #[test]
    fn recompaction_without_membership_change_is_free(
        steps in proptest::collection::vec(step_strategy(), 0..120),
    ) {
        let mut view = ClusterView::new(N_EXEC, CAPACITY);
        view.init_ready_list(vec![false; N_STAGE]);
        let mut model = Model::new();
        for step in &steps {
            model.drive(&mut view, step);
        }
        view.compact_free_execs();
        let pops = view.ect_heap_pops();
        let free: Vec<u32> = view.free_execs().to_vec();
        view.compact_free_execs();
        prop_assert_eq!(view.ect_heap_pops(), pops);
        prop_assert_eq!(view.free_execs(), free.as_slice());
    }
}

// --- sim-level: random workloads + fault plans -------------------------

const WORKLOADS: &[Workload] = &[
    Workload::LinearRegression,
    Workload::LogisticRegression,
    Workload::DecisionTree,
    Workload::KMeans,
    Workload::TriangleCount,
    Workload::ConnectedComponent,
    Workload::PregelOperation,
    Workload::PageRank,
];

fn small_cluster() -> ClusterConfig {
    let mut c = ClusterConfig::paper_testbed();
    c.racks = vec![2, 1];
    c.execs_per_node = 2;
    c.exec_cache_mb = 256.0;
    c
}

/// One end-to-end run in the dev profile: the simulator's debug assertions
/// re-derive the ready list and free list from scratch at every scheduling
/// opportunity, so simply completing is the differential check. On top,
/// the run must be deterministic and must never rebuild the ready list
/// after construction (the counter the CI guard pins at paper scale).
fn check_run(w: Workload, tasks: u32, iterations: u32, fault_seed: Option<u64>) {
    let scale = Scale {
        tasks,
        block_mb: 32.0,
        iterations,
    };
    let dag = w.build(&scale);
    let mut cl = small_cluster();
    if let Some(seed) = fault_seed {
        let n_exec = cl.total_nodes() * cl.execs_per_node;
        cl.faults = Some(FaultPlan::chaos(seed, n_exec, 40_000, &dag));
    }
    let sys = System::dagon();
    let a = run_system(&dag, &cl, &sys).result;
    let b = run_system(&dag, &cl, &sys).result;
    assert_eq!(
        a.fingerprint(),
        b.fingerprint(),
        "nondeterministic run: {w:?} tasks={tasks} iters={iterations} fault={fault_seed:?}"
    );
    let s = &a.metrics.sched;
    assert_eq!(
        s.ready_list_rebuilds, 1,
        "ready list rebuilt mid-run: {w:?} tasks={tasks} iters={iterations}"
    );
    assert_eq!(s.view_rebuilds, 1, "cluster view rebuilt mid-run: {w:?}");
    assert!(
        s.ect_heap_pops > 0,
        "free-executor heap never consulted: {w:?}"
    );
    assert!(s.ect_heap_stale <= s.ect_heap_pops);
    assert!(a
        .metrics
        .per_stage
        .iter()
        .all(|st| st.completed_at.is_some()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fault-free random workloads keep the incremental scheduling state
    /// consistent (dev-profile oracle asserts) and rebuild-free.
    #[test]
    fn random_workloads_stay_incremental(
        w_idx in 0usize..WORKLOADS.len(),
        tasks in 4u32..12,
        iterations in 1u32..4,
    ) {
        check_run(WORKLOADS[w_idx], tasks, iterations, None);
    }

    /// Chaos plans — crashes, restarts, blacklists, stragglers — exercise
    /// the lazy-deletion path (stale heap entries from dead executors)
    /// without ever forcing a ready-list or view rebuild.
    #[test]
    fn chaos_keeps_ready_state_incremental(
        w_idx in 0usize..WORKLOADS.len(),
        tasks in 4u32..10,
        fault_seed in 0u64..24,
    ) {
        check_run(WORKLOADS[w_idx], tasks, 2, Some(fault_seed));
    }
}

/// Pinned: the crash-restart shape most likely to leave stale heap
/// entries (every executor dies at least once under chaos seed 11 on CC).
#[test]
fn chaos_regression_cc_seed11() {
    check_run(Workload::ConnectedComponent, 8, 2, Some(11));
}
