//! Property-based tests across the stack: on arbitrary random DAGs, the
//! simulator must uphold its invariants under every scheduling policy.

// Test-only id mints from small generated counts.
#![allow(clippy::cast_possible_truncation)]

use dagon_cache::PolicyKind;
use dagon_cluster::hdfs::DataMap;
use dagon_cluster::{ClusterConfig, ExecId, Locality, LocalityIndex, NodeId, TaskView, Topology};
use dagon_core::run_system;
use dagon_core::system::{PlaceKind, SchedKind, System};
use dagon_dag::generate::{random_dag, GenParams};
use dagon_dag::graph::Closure;
use dagon_dag::{BlockId, DagBuilder, PriorityTracker, RddId};
use proptest::prelude::*;

fn small_params() -> GenParams {
    GenParams {
        stages: 8,
        tasks: (1, 6),
        demand_cpus: (1, 4),
        cpu_ms: (100, 5_000),
        block_mb: (8.0, 64.0),
        ..Default::default()
    }
}

fn cluster() -> ClusterConfig {
    let mut c = ClusterConfig::paper_testbed();
    c.racks = vec![2, 1];
    c.execs_per_node = 2;
    c.exec_cache_mb = 256.0;
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Priorities are monotone: pv never increases as tasks launch, and a
    /// parent's pv always covers each of its children's.
    #[test]
    fn priority_invariants(seed in 0u64..500) {
        let dag = random_dag(&small_params(), seed);
        let tracker = PriorityTracker::from_dag(&dag);
        let closure = Closure::successors(&dag);
        for s in dag.stage_ids() {
            // pv_i ≥ w_i
            prop_assert!(tracker.pv(s) >= tracker.remaining_work(s));
            for c in closure.members(s) {
                // pv of ancestor ≥ pv contribution of each descendant's
                // remaining work.
                prop_assert!(tracker.pv(s) >= tracker.remaining_work(c));
            }
        }
    }

    /// End-to-end on random DAGs: completion, exactly-once winners, valid
    /// utilization, non-decreasing stage completion along dependencies.
    #[test]
    fn random_dags_complete_under_dagon(seed in 0u64..40) {
        let dag = random_dag(&small_params(), seed);
        let out = run_system(&dag, &cluster(), &System::dagon());
        let total: u32 = dag.stages().iter().map(|s| s.num_tasks).sum();
        let winners = out.result.metrics.task_runs.iter().filter(|r| r.winner).count() as u32;
        prop_assert_eq!(winners, total);
        let u = out.result.cpu_utilization();
        prop_assert!(u > 0.0 && u <= 1.0);
        for s in dag.stage_ids() {
            let fin = out.result.metrics.per_stage[s.index()].completed_at.unwrap();
            for p in dag.parents(s) {
                let pfin = out.result.metrics.per_stage[p.index()].completed_at.unwrap();
                prop_assert!(pfin <= fin, "child {} finished before parent {}", s, p);
                // And no child task may *start* before the parent completed.
                let first = out.result.metrics.per_stage[s.index()].first_launch.unwrap();
                prop_assert!(first >= pfin);
            }
        }
    }

    /// FIFO+LRU (stock) also upholds the invariants, and cache accounting
    /// stays consistent under every policy.
    #[test]
    fn cache_accounting_consistent(seed in 0u64..20, policy_idx in 0usize..5) {
        check_cache_accounting(seed, policy_idx);
    }

    /// The incremental [`LocalityIndex`] must agree with brute-force
    /// recomputation from the raw block registry under arbitrary
    /// interleavings of cache inserts, evictions, disk adds, and queries
    /// (queries fill memos; mutations must invalidate them).
    #[test]
    fn locality_index_matches_brute_force(
        ops in proptest::collection::vec((0u8..3u8, 0u32..24u32, 0u32..8u32), 0..80),
    ) {
        // 2 racks × 2 nodes × 2 execs = 8 executors over a 24-block source.
        let mut b = DagBuilder::new("p");
        let src = b.hdfs_rdd("in", 24, 32.0);
        let _ = b.stage("s").tasks(24).demand_cpus(1).cpu_ms(100).reads_narrow(src).build();
        let dag = b.build().unwrap();
        let topo = Topology::build(&[2, 2], 2);
        let data = DataMap::place_sources(&dag, &topo, 2, 42);
        // Task k prefers blocks {k, k+1 mod 24}: multi-block worst-of.
        let tv: Vec<Vec<TaskView>> = vec![(0..24)
            .map(|k| TaskView {
                loc_blocks: vec![
                    BlockId::new(RddId(0), k),
                    BlockId::new(RddId(0), (k + 1) % 24),
                ],
            })
            .collect()];
        let mut idx = LocalityIndex::new(&dag, &topo, data, &tv);
        for &(op, part, e) in &ops {
            let block = BlockId::new(RddId(0), part);
            // Query first so mutations hit warm (stale) memos.
            let _ = idx.task_locality(0, part, ExecId(e));
            match op {
                0 => idx.add_cached(block, ExecId(e)),
                1 => idx.remove_cached(block, ExecId(e)),
                _ => idx.add_disk(block, NodeId(e % 4)),
            }
        }
        for k in 0..24u32 {
            let mut best = Locality::Any;
            for e in 0..8u32 {
                let want = tv[0][k as usize]
                    .loc_blocks
                    .iter()
                    .map(|&b| brute_locality(idx.data(), &topo, b, ExecId(e)))
                    .max()
                    .unwrap();
                prop_assert_eq!(
                    idx.task_locality(0, k, ExecId(e)), want, "task {} exec {}", k, e
                );
                best = best.min(want);
            }
            prop_assert_eq!(idx.task_best_level(0, k), best, "task {} best", k);
        }
    }

    /// The schedule is resource-feasible: at no instant does the busy-core
    /// integral exceed capacity (checked via peak of the timeline).
    #[test]
    fn busy_cores_never_exceed_capacity(seed in 0u64..20) {
        let dag = random_dag(&small_params(), seed);
        let cl = cluster();
        let out = run_system(&dag, &cl, &System::graphene_mrd());
        let peak = out
            .result
            .metrics
            .busy_cores
            .timeline
            .as_ref()
            .unwrap()
            .iter()
            .fold(0.0f64, |m, p| m.max(p.v));
        prop_assert!(peak <= cl.total_cores() as f64 + 1e-9, "peak {peak}");
    }
}

fn check_cache_accounting(seed: u64, policy_idx: usize) {
    let dag = random_dag(&small_params(), seed);
    let policy = PolicyKind::ALL[policy_idx];
    let sys = System::new(SchedKind::Fifo, PlaceKind::NativeDelay, policy);
    let out = run_system(&dag, &cluster(), &sys);
    let c = &out.result.metrics.cache;
    assert!(c.prefetch_used <= c.prefetches);
    if policy == PolicyKind::None {
        assert_eq!(c.insertions, 0);
        assert_eq!(c.hits, 0);
    }
    // Evictions can never exceed insertions.
    assert!(c.evictions + c.proactive_evictions <= c.insertions);
}

/// Locality from the raw registry, the pre-index way (worst case per block).
fn brute_locality(data: &DataMap, topo: &Topology, b: BlockId, e: ExecId) -> Locality {
    if data.is_cached_in(b, e) {
        return Locality::Process;
    }
    let node = topo.node_of_exec(e);
    if data.disk_nodes(b).contains(&node)
        || data
            .cached_execs(b)
            .iter()
            .any(|x| topo.node_of_exec(*x) == node)
    {
        return Locality::Node;
    }
    let rack = topo.rack_of_node(node);
    if data
        .disk_nodes(b)
        .iter()
        .any(|n| topo.rack_of_node(*n) == rack)
        || data
            .cached_execs(b)
            .iter()
            .any(|x| topo.rack_of_exec(*x) == rack)
    {
        return Locality::Rack;
    }
    Locality::Any
}

/// Checked-in `props.proptest-regressions` cases, pinned explicitly so they
/// run even where the regression file is not consulted.
#[test]
fn cache_accounting_regression_seed0_policy0() {
    check_cache_accounting(0, 0);
}

#[test]
fn cache_accounting_regression_seed0_policy3() {
    check_cache_accounting(0, 3);
}
