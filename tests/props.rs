//! Property-based tests across the stack: on arbitrary random DAGs, the
//! simulator must uphold its invariants under every scheduling policy.

use dagon_cache::PolicyKind;
use dagon_cluster::ClusterConfig;
use dagon_core::system::{PlaceKind, SchedKind, System};
use dagon_core::run_system;
use dagon_dag::generate::{random_dag, GenParams};
use dagon_dag::graph::Closure;
use dagon_dag::PriorityTracker;
use proptest::prelude::*;

fn small_params() -> GenParams {
    GenParams {
        stages: 8,
        tasks: (1, 6),
        demand_cpus: (1, 4),
        cpu_ms: (100, 5_000),
        block_mb: (8.0, 64.0),
        ..Default::default()
    }
}

fn cluster() -> ClusterConfig {
    let mut c = ClusterConfig::paper_testbed();
    c.racks = vec![2, 1];
    c.execs_per_node = 2;
    c.exec_cache_mb = 256.0;
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Priorities are monotone: pv never increases as tasks launch, and a
    /// parent's pv always covers each of its children's.
    #[test]
    fn priority_invariants(seed in 0u64..500) {
        let dag = random_dag(&small_params(), seed);
        let tracker = PriorityTracker::from_dag(&dag);
        let closure = Closure::successors(&dag);
        for s in dag.stage_ids() {
            // pv_i ≥ w_i
            prop_assert!(tracker.pv(s) >= tracker.remaining_work(s));
            for c in closure.members(s) {
                // pv of ancestor ≥ pv contribution of each descendant's
                // remaining work.
                prop_assert!(tracker.pv(s) >= tracker.remaining_work(c));
            }
        }
    }

    /// End-to-end on random DAGs: completion, exactly-once winners, valid
    /// utilization, non-decreasing stage completion along dependencies.
    #[test]
    fn random_dags_complete_under_dagon(seed in 0u64..40) {
        let dag = random_dag(&small_params(), seed);
        let out = run_system(&dag, &cluster(), &System::dagon());
        let total: u32 = dag.stages().iter().map(|s| s.num_tasks).sum();
        let winners = out.result.metrics.task_runs.iter().filter(|r| r.winner).count() as u32;
        prop_assert_eq!(winners, total);
        let u = out.result.cpu_utilization();
        prop_assert!(u > 0.0 && u <= 1.0);
        for s in dag.stage_ids() {
            let fin = out.result.metrics.per_stage[s.index()].completed_at.unwrap();
            for p in dag.parents(s) {
                let pfin = out.result.metrics.per_stage[p.index()].completed_at.unwrap();
                prop_assert!(pfin <= fin, "child {} finished before parent {}", s, p);
                // And no child task may *start* before the parent completed.
                let first = out.result.metrics.per_stage[s.index()].first_launch.unwrap();
                prop_assert!(first >= pfin);
            }
        }
    }

    /// FIFO+LRU (stock) also upholds the invariants, and cache accounting
    /// stays consistent under every policy.
    #[test]
    fn cache_accounting_consistent(seed in 0u64..20, policy_idx in 0usize..5) {
        let dag = random_dag(&small_params(), seed);
        let policy = PolicyKind::ALL[policy_idx];
        let sys = System::new(SchedKind::Fifo, PlaceKind::NativeDelay, policy);
        let out = run_system(&dag, &cluster(), &sys);
        let c = &out.result.metrics.cache;
        prop_assert!(c.prefetch_used <= c.prefetches);
        if policy == PolicyKind::None {
            prop_assert_eq!(c.insertions, 0);
            prop_assert_eq!(c.hits, 0);
        }
        // Evictions can never exceed insertions.
        prop_assert!(c.evictions + c.proactive_evictions <= c.insertions);
    }

    /// The schedule is resource-feasible: at no instant does the busy-core
    /// integral exceed capacity (checked via peak of the timeline).
    #[test]
    fn busy_cores_never_exceed_capacity(seed in 0u64..20) {
        let dag = random_dag(&small_params(), seed);
        let cl = cluster();
        let out = run_system(&dag, &cl, &System::graphene_mrd());
        let peak = out
            .result
            .metrics
            .busy_cores
            .timeline
            .as_ref()
            .unwrap()
            .iter()
            .fold(0.0f64, |m, p| m.max(p.v));
        prop_assert!(peak <= cl.total_cores() as f64 + 1e-9, "peak {peak}");
    }
}
