//! Shape tests: the qualitative results the paper reports must hold on the
//! full-scale experiment configuration. These are the reproduction's
//! acceptance tests — magnitudes are allowed to differ from the paper (our
//! substrate is a simulator, not the authors' testbed), orderings are not.
//!
//! They run the paper-scale simulator configuration and take a few seconds
//! each in release mode (`cargo test --release`).

use dagon_cache::{table1, PolicyKind};
use dagon_core::experiments::{self, ExpConfig};
use dagon_core::system::{PlaceKind, SchedKind, System};
use dagon_core::tiny_exec::{self, Mode};
use dagon_dag::examples::fig1;
use dagon_dag::{BlockId, RddId};
use dagon_workloads::Workload;

fn paper_cfg() -> ExpConfig {
    let mut cfg = ExpConfig::paper();
    cfg.seeds = 2; // keep test runtime moderate
    cfg
}

#[test]
fn fig2_makespans_are_exact() {
    let dag = fig1();
    assert_eq!(tiny_exec::run_tiny(&dag, 16, Mode::Fifo).makespan, 16);
    assert_eq!(tiny_exec::run_tiny(&dag, 16, Mode::DagAware).makespan, 12);
}

#[test]
fn table1_orderings_match_paper() {
    let dag = fig1();
    let initial = [BlockId::new(RddId(0), 0)];
    let hits = |sched: &[table1::Step], p| table1::replay(&dag, sched, 3, p, &initial).hits;
    let fifo = table1::fifo_schedule();
    let dagaware = table1::dag_aware_schedule();
    // MRD ≫ LRU under FIFO; both degrade under the DAG-aware schedule;
    // LRP > MRD under the DAG-aware schedule.
    assert!(hits(&fifo, PolicyKind::Mrd) > hits(&fifo, PolicyKind::Lru) + 2);
    assert!(hits(&dagaware, PolicyKind::Mrd) < hits(&fifo, PolicyKind::Mrd));
    assert!(hits(&dagaware, PolicyKind::Lrp) > hits(&dagaware, PolicyKind::Mrd));
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "paper-scale simulation; run with --release"
)]
fn fig3_shape_scans_inflate_iterations_stay_fast() {
    // Case-study cluster: enabling the 3 s wait must lengthen the
    // insensitive scan stages (0 and 16) while iteration stages stay at
    // sub-second process-local durations.
    let cfg = ExpConfig::case_study();
    let rows = experiments::fig3(&cfg);
    let wait0 = &rows[0];
    let wait3 = &rows[2];
    assert!(
        wait3.stage_durations_s[0] > wait0.stage_durations_s[0] * 1.2,
        "stage 0: {} -> {}",
        wait0.stage_durations_s[0],
        wait3.stage_durations_s[0]
    );
    assert!(
        wait3.stage_durations_s[16] > wait0.stage_durations_s[16] * 1.2,
        "stage 16: {} -> {}",
        wait0.stage_durations_s[16],
        wait3.stage_durations_s[16]
    );
    for i in 1..=15 {
        assert!(
            wait3.stage_durations_s[i] < 2.0,
            "iter {i}: {}",
            wait3.stage_durations_s[i]
        );
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "paper-scale simulation; run with --release"
)]
fn fig9_shape_dagon_ta_beats_fifo_on_every_workload() {
    let cfg = paper_cfg();
    let data = experiments::fig9(
        &cfg,
        &[
            Workload::LinearRegression,
            Workload::KMeans,
            Workload::ConnectedComponent,
        ],
    );
    for (w, cells) in &data.jct {
        let fifo = cells[0].1;
        let dagon = cells[2].1;
        assert!(dagon < fifo, "{w}: Dagon-TA {dagon} vs FIFO {fifo}");
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "paper-scale simulation; run with --release"
)]
fn fig10_shape_sensitivity_reduces_mean_jct_and_high_locality_waste() {
    let cfg = paper_cfg();
    let rows = experiments::fig10(
        &cfg,
        &[
            Workload::LogisticRegression,
            Workload::KMeans,
            Workload::TriangleCount,
        ],
    );
    let pairs: Vec<(f64, f64)> = rows
        .iter()
        .map(|r| (r.jct_delay_s, r.jct_sensitivity_s))
        .collect();
    let imp = experiments::mean_improvement(&pairs);
    assert!(imp > 0.05, "mean improvement {imp}");
    let hi_d: usize = rows.iter().map(|r| r.hi_loc_insensitive_delay).sum();
    let hi_s: usize = rows.iter().map(|r| r.hi_loc_insensitive_sensitivity).sum();
    assert!(
        hi_s < hi_d,
        "high-locality insensitive launches {hi_d} -> {hi_s}"
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "paper-scale simulation; run with --release"
)]
fn fig11_shape_dagon_lrp_fastest_on_io_workloads() {
    let cfg = paper_cfg();
    let rows = experiments::fig11(&cfg, &[Workload::ConnectedComponent, Workload::PageRank]);
    for r in &rows {
        let by = |label: &str| {
            r.cells
                .iter()
                .find(|c| c.label == label)
                .map(|c| c.jct_s)
                .unwrap()
        };
        let lru = by("FIFO+LRU");
        let dagon_lrp = by("Dagon+LRP");
        let dagon_mrd = by("Dagon+MRD");
        assert!(
            dagon_lrp < lru * 0.95,
            "{}: {dagon_lrp} vs LRU {lru}",
            r.workload
        );
        assert!(
            dagon_lrp <= dagon_mrd * 1.02,
            "{}: LRP {dagon_lrp} vs MRD {dagon_mrd}",
            r.workload
        );
        // MRD improves raw hit counts over LRU under FIFO.
        let hr = |label: &str| {
            r.cells
                .iter()
                .find(|c| c.label == label)
                .map(|c| c.hit_ratio)
                .unwrap()
        };
        assert!(hr("FIFO+MRD") > hr("FIFO+LRU"), "{}", r.workload);
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "paper-scale simulation; run with --release"
)]
fn fig8_shape_dagon_beats_stock_spark_overall() {
    let cfg = paper_cfg();
    let data = experiments::fig8(
        &cfg,
        &[
            Workload::LogisticRegression,
            Workload::KMeans,
            Workload::ConnectedComponent,
            Workload::PregelOperation,
        ],
    );
    let pairs: Vec<(f64, f64)> = data
        .iter()
        .map(|r| (r.cells[0].jct_s, r.cells[3].jct_s))
        .collect();
    let imp = experiments::mean_improvement(&pairs);
    assert!(imp > 0.10, "Dagon vs stock mean improvement only {imp}");
    // And Dagon's mean CPU utilization is the highest of the lineup on the
    // I/O-heavy subset.
    let io_rows: Vec<_> = data
        .iter()
        .filter(|r| {
            matches!(
                r.workload,
                Workload::ConnectedComponent | Workload::PregelOperation
            )
        })
        .collect();
    let util =
        |i: usize| io_rows.iter().map(|r| r.cells[i].cpu_util).sum::<f64>() / io_rows.len() as f64;
    assert!(
        util(3) > util(0),
        "Dagon util {} vs stock {}",
        util(3),
        util(0)
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "paper-scale simulation; run with --release"
)]
fn sensitivity_on_kmeans_recovers_most_of_disabled_delay() {
    // The §II-A promise: sensitivity-aware scheduling should keep the
    // iteration stages' locality wins without paying the scans' idling tax.
    let cfg = ExpConfig::case_study();
    let dag = Workload::KMeans.build(&cfg.scale);
    let delay = dagon_core::run_system(
        &dag,
        &cfg.cluster,
        &System::new(SchedKind::Dagon, PlaceKind::NativeDelay, PolicyKind::Lru),
    );
    let sens = dagon_core::run_system(
        &dag,
        &cfg.cluster,
        &System::new(SchedKind::Dagon, PlaceKind::Sensitivity, PolicyKind::Lru),
    );
    assert!(
        sens.result.jct < delay.result.jct,
        "sens {} vs delay {}",
        sens.result.jct,
        delay.result.jct
    );
}
