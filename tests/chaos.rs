//! Seeded chaos harness: run a matrix of (workload × system × fault plan)
//! paired simulations and assert the structural invariants of fault
//! recovery — every task effectively completes exactly once, no winning
//! attempt overlaps its executor's dead window, the cache ledger balances,
//! and a faulty run is never faster than its fault-free twin.
//!
//! On failure the offending (workload, system, seed) triples are written to
//! `target/chaos-failures.txt` so CI can upload them as a replayable
//! artifact.

use dagon_cluster::{ClusterConfig, FaultKind, FaultPlan, SimResult};
use dagon_core::experiments::ExpConfig;
use dagon_core::{run_system, System};
use dagon_dag::examples::tiny_chain;
use dagon_dag::JobDag;
use dagon_workloads::Workload;

/// The fault seeds of the matrix. 3 seeds × 2 workloads × 4 systems = 24
/// combinations, each with its own generated crash/loss/flake plan.
const CHAOS_SEEDS: [u64; 3] = [11, 23, 47];

fn workloads() -> Vec<(&'static str, JobDag, ClusterConfig)> {
    let quick = ExpConfig::quick();
    vec![
        ("tiny_chain", tiny_chain(8, 500), ClusterConfig::tiny(2, 4)),
        (
            "CC-quick",
            Workload::ConnectedComponent.build(&quick.scale),
            quick.cluster.clone(),
        ),
    ]
}

fn num_execs(cluster: &ClusterConfig) -> u32 {
    cluster.total_nodes() * cluster.execs_per_node
}

/// Dead windows `(crash, restart)` per executor index, from the plan.
fn dead_windows(plan: &FaultPlan, n_exec: usize) -> Vec<Vec<(u64, u64)>> {
    let mut w = vec![Vec::new(); n_exec];
    for fe in &plan.events {
        if let FaultKind::ExecCrash {
            exec,
            restart_after_ms,
        } = fe.kind
        {
            let t = fe.at.max(1);
            w[exec.index()].push((t, restart_after_ms.map_or(u64::MAX, |d| t + d)));
        }
    }
    w
}

/// The invariant suite every faulty run must satisfy.
fn check_invariants(
    name: &str,
    dag: &JobDag,
    plan: &FaultPlan,
    n_exec: u32,
    faulty: &SimResult,
    baseline: &SimResult,
) -> Result<(), String> {
    let m = &faulty.metrics;
    let mut errs = Vec::new();

    // 1. Every stage completed.
    for (i, s) in m.per_stage.iter().enumerate() {
        if s.completed_at.is_none() {
            errs.push(format!("stage {i} never completed"));
        }
    }

    // 2. Every task completes effectively once: one winning attempt per
    //    original task plus one per lineage recomputation, and no winner
    //    is a failed attempt.
    let total_tasks: u64 = dag.stages().iter().map(|s| s.num_tasks as u64).sum();
    let winners = m.task_runs.iter().filter(|r| r.winner).count() as u64;
    if winners != total_tasks + m.faults.tasks_recomputed {
        errs.push(format!(
            "winners {winners} != tasks {total_tasks} + recomputed {}",
            m.faults.tasks_recomputed
        ));
    }
    if m.task_runs.iter().any(|r| r.winner && r.failed) {
        errs.push("a failed attempt won".into());
    }

    // 3. No winning attempt overlaps its executor's dead window: nothing
    //    launches on a dead executor, and nothing survives its crash.
    let windows = dead_windows(plan, n_exec as usize);
    for r in m.task_runs.iter().filter(|r| r.winner) {
        for &(crash, restart) in &windows[r.exec.index()] {
            if r.start > crash && r.start < restart {
                errs.push(format!(
                    "{:?} launched on {:?} inside dead window [{crash},{restart})",
                    r.task, r.exec
                ));
            }
            if r.start < crash && r.end > crash {
                errs.push(format!(
                    "{:?} on {:?} survived the crash at {crash}",
                    r.task, r.exec
                ));
            }
        }
    }

    // 4. Cache ledger balances: inserts = evictions + proactive drops +
    //    fault losses + still-resident.
    let c = &m.cache;
    if c.insertions != c.evictions + c.proactive_evictions + c.lost + c.resident_end {
        errs.push(format!(
            "cache ledger: {} inserted != {} evicted + {} proactive + {} lost + {} resident",
            c.insertions, c.evictions, c.proactive_evictions, c.lost, c.resident_end
        ));
    }

    // 5. Faults never speed a job up.
    if faulty.jct < baseline.jct {
        errs.push(format!(
            "faulty jct {} < fault-free jct {}",
            faulty.jct, baseline.jct
        ));
    }

    if errs.is_empty() {
        Ok(())
    } else {
        Err(format!("{name}: {}", errs.join("; ")))
    }
}

#[test]
fn chaos_matrix_preserves_invariants() {
    let mut failures = Vec::new();
    let mut combos = 0u32;
    for (wname, dag, cluster) in workloads() {
        for sys in System::fig8_lineup() {
            let baseline = run_system(&dag, &cluster, &sys).result;
            for seed in CHAOS_SEEDS {
                combos += 1;
                let plan = FaultPlan::chaos(seed, num_execs(&cluster), baseline.jct, &dag);
                let mut faulty_cluster = cluster.clone();
                faulty_cluster.faults = Some(plan.clone());
                let faulty = run_system(&dag, &faulty_cluster, &sys).result;
                let name = format!("{wname}/{sys}/seed={seed}");
                if let Err(e) =
                    check_invariants(&name, &dag, &plan, num_execs(&cluster), &faulty, &baseline)
                {
                    failures.push(e);
                }
            }
        }
    }
    assert!(
        combos >= 20,
        "matrix shrank below 20 combinations: {combos}"
    );
    if !failures.is_empty() {
        let report = failures.join("\n");
        let _ = std::fs::create_dir_all("target");
        let _ = std::fs::write("target/chaos-failures.txt", &report);
        panic!("{} chaos combination(s) failed:\n{report}", failures.len());
    }
}

/// Differential guarantee: arming the fault machinery with an *empty* plan
/// is bit-identical to not arming it at all, for every fig8 system.
#[test]
fn empty_fault_plan_is_bit_identical() {
    for (wname, dag, cluster) in workloads() {
        for sys in System::fig8_lineup() {
            let plain = run_system(&dag, &cluster, &sys).result;
            let mut armed_cluster = cluster.clone();
            armed_cluster.faults = Some(FaultPlan::none());
            let armed = run_system(&dag, &armed_cluster, &sys).result;
            assert_eq!(
                plain.fingerprint(),
                armed.fingerprint(),
                "{wname}/{sys}: empty FaultPlan changed the simulation"
            );
        }
    }
}

/// An executor crash *after* a cached stage completed must trigger lineage
/// recomputation: the lost cache + disk outputs are rebuilt by resubmitting
/// the producing stage's tasks, and the job still completes.
#[test]
fn crash_during_cached_stage_forces_lineage_recomputation() {
    // One executor holds every scan output (cached + on disk); crashing it
    // mid-agg destroys both copies of the not-yet-consumed blocks.
    let dag = tiny_chain(8, 500);
    let mut cluster = ClusterConfig::tiny(1, 2);
    cluster.faults = Some(FaultPlan::none().and(
        4500,
        FaultKind::ExecCrash {
            exec: dagon_cluster::ExecId(0),
            restart_after_ms: Some(2000),
        },
    ));
    let sys = System::dagon();
    let res = run_system(&dag, &cluster, &sys).result;
    let f = &res.metrics.faults;
    assert_eq!(f.exec_crashes, 1);
    assert!(
        f.tasks_recomputed > 0,
        "crash destroyed no needed output: {f:?}"
    );
    assert!(
        f.stage_resubmissions >= 1,
        "completed stage was not reopened: {f:?}"
    );
    assert!(res
        .metrics
        .per_stage
        .iter()
        .all(|s| s.completed_at.is_some()));
}

/// Mixed fault kinds in one plan: crashes, cached-block losses and flaky
/// tasks together, still converging on the full Dagon system.
#[test]
fn combined_fault_kinds_recover() {
    let quick = ExpConfig::quick();
    let dag = Workload::KMeans.build(&quick.scale);
    let sys = System::dagon();
    let baseline = run_system(&dag, &quick.cluster, &sys).result;
    for seed in [3, 9] {
        let plan = FaultPlan::chaos(seed, num_execs(&quick.cluster), baseline.jct, &dag);
        let mut cluster = quick.cluster.clone();
        cluster.faults = Some(plan.clone());
        let faulty = run_system(&dag, &cluster, &sys).result;
        check_invariants(
            &format!("KMeans-quick/Dagon/seed={seed}"),
            &dag,
            &plan,
            num_execs(&quick.cluster),
            &faulty,
            &baseline,
        )
        .unwrap();
    }
}
