//! Bit-level determinism: running the same configuration twice must
//! produce identical results — fault-free *and* under an armed fault plan.
//! The simulator's only remaining hash containers are membership-only
//! (`cancelled`, `spec_launched`, `prefetched`); everything iterated for
//! decisions (the running-attempt table, pending sets, locality index) has
//! deterministic order by construction, and this test is the tripwire for
//! any future leak.

use dagon_cluster::{ClusterConfig, FaultPlan};
use dagon_core::experiments::ExpConfig;
use dagon_core::{run_system, System};
use dagon_dag::examples::{fig1, tiny_chain};
use dagon_dag::JobDag;
use dagon_workloads::Workload;

fn scenarios() -> Vec<(&'static str, JobDag, ClusterConfig)> {
    let quick = ExpConfig::quick();
    vec![
        ("fig1", fig1(), ClusterConfig::tiny(2, 16)),
        ("tiny_chain", tiny_chain(8, 500), ClusterConfig::tiny(2, 4)),
        (
            "KMeans-quick",
            Workload::KMeans.build(&quick.scale),
            quick.cluster.clone(),
        ),
        (
            "CC-quick",
            Workload::ConnectedComponent.build(&quick.scale),
            quick.cluster.clone(),
        ),
    ]
}

#[test]
fn repeated_runs_are_bit_identical() {
    for (wname, dag, cluster) in scenarios() {
        for sys in System::fig8_lineup() {
            let a = run_system(&dag, &cluster, &sys).result;
            let b = run_system(&dag, &cluster, &sys).result;
            assert_eq!(a.jct, b.jct, "{wname}/{sys}: jct differs across runs");
            assert_eq!(
                a.fingerprint(),
                b.fingerprint(),
                "{wname}/{sys}: fingerprint differs across runs"
            );
        }
    }
}

/// The 200-executor tenant load sweep is bit-for-bit reproducible from its
/// seed: every percentile, fairness index and rejection count replays.
/// Release-only — the sweep runs 3 policies × 55-job streams with the
/// per-opportunity incremental oracles active in debug builds.
#[test]
#[cfg_attr(debug_assertions, ignore = "release-only: 200-executor sweep")]
fn tenant_sweep_is_bit_reproducible() {
    use dagon_core::tenancy::fig_tenant_sweep;
    let a = fig_tenant_sweep(7, &[1.0]);
    let b = fig_tenant_sweep(7, &[1.0]);
    assert_eq!(a.len(), b.len());
    for (ra, rb) in a.iter().zip(&b) {
        for (ca, cb) in ra.cells.iter().zip(&rb.cells) {
            assert_eq!(ca.policy, cb.policy);
            assert_eq!(ca.p50_jct_ms, cb.p50_jct_ms, "{}: p50 drifted", ca.policy);
            assert_eq!(ca.p99_jct_ms, cb.p99_jct_ms, "{}: p99 drifted", ca.policy);
            assert_eq!(
                ca.makespan_ms, cb.makespan_ms,
                "{}: makespan drifted",
                ca.policy
            );
            assert_eq!(
                ca.rejected, cb.rejected,
                "{}: rejections drifted",
                ca.policy
            );
            assert_eq!(
                ca.jain_fairness.to_bits(),
                cb.jain_fairness.to_bits(),
                "{}: fairness index drifted",
                ca.policy
            );
        }
    }
}

#[test]
fn repeated_faulty_runs_are_bit_identical() {
    for (wname, dag, cluster) in scenarios() {
        let n_exec = cluster.total_nodes() * cluster.execs_per_node;
        for sys in System::fig8_lineup() {
            let mut faulty = cluster.clone();
            faulty.faults = Some(FaultPlan::chaos(17, n_exec, 30_000, &dag));
            let a = run_system(&dag, &faulty, &sys).result;
            let b = run_system(&dag, &faulty, &sys).result;
            assert_eq!(
                a.fingerprint(),
                b.fingerprint(),
                "{wname}/{sys}: faulty fingerprint differs across runs"
            );
            assert_eq!(
                a.metrics.faults, b.metrics.faults,
                "{wname}/{sys}: fault counters differ across runs"
            );
        }
    }
}
