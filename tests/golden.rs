//! Golden simulation snapshots: same-seed runs must produce *identical*
//! results — JCT, per-stage metrics, and locality histograms — across
//! refactors of the scheduling fast path. The constants below were
//! captured from the pre-LocalityIndex sequential scheduler; the batched
//! scheduler must reproduce them bit-for-bit (ISSUE 1 acceptance
//! criterion).
//!
//! To regenerate after an *intentional* semantic change:
//! `cargo test --release --test golden -- --ignored print_golden --nocapture`

use dagon_cluster::{ClusterConfig, SimResult};
use dagon_core::experiments::ExpConfig;
use dagon_core::{run_system, System};
use dagon_dag::examples::{fig1, tiny_chain};
use dagon_dag::JobDag;
use dagon_workloads::Workload;

/// FNV-1a over every semantically-relevant field of the result: JCT,
/// per-stage first-launch/completion times, launch and finish locality
/// histograms, and the winner task-run locality histogram. Scheduler
/// overhead counters are deliberately excluded — they describe how the
/// result was computed, not what it is.
fn fingerprint(r: &SimResult) -> (u64, u64) {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(r.jct);
    mix(r.total_cores as u64);
    for s in &r.metrics.per_stage {
        mix(s.first_launch.map_or(u64::MAX, |t| t));
        mix(s.completed_at.map_or(u64::MAX, |t| t));
        for &c in &s.launches_by_locality {
            mix(c as u64);
        }
        for &(n, ms) in &s.finished_by_locality {
            mix(n as u64);
            mix(ms);
        }
    }
    let mut hist = [0u64; 4];
    for run in r.metrics.task_runs.iter().filter(|t| t.winner) {
        hist[run.locality.index()] += 1;
    }
    for c in hist {
        mix(c);
    }
    (r.jct, h)
}

/// The four scenarios of the acceptance criterion, × the fig8 lineup.
fn scenarios() -> Vec<(&'static str, JobDag, ClusterConfig)> {
    let quick = ExpConfig::quick();
    vec![
        ("fig1", fig1(), ClusterConfig::tiny(2, 16)),
        ("tiny_chain", tiny_chain(8, 500), ClusterConfig::tiny(2, 4)),
        (
            "KMeans-quick",
            Workload::KMeans.build(&quick.scale),
            quick.cluster.clone(),
        ),
        (
            "CC-quick",
            Workload::ConnectedComponent.build(&quick.scale),
            quick.cluster.clone(),
        ),
    ]
}

fn run_all() -> Vec<(String, u64, u64)> {
    let mut rows = Vec::new();
    for (wname, dag, cluster) in scenarios() {
        for sys in System::fig8_lineup() {
            let out = run_system(&dag, &cluster, &sys);
            let (jct, fp) = fingerprint(&out.result);
            rows.push((format!("{wname}/{sys}"), jct, fp));
        }
    }
    rows
}

/// Captured from the pre-optimization scheduler (sequential single-pick
/// path), vendored-rand streams, seed = ClusterConfig defaults.
const GOLDEN: &[(&str, u64, u64)] = &[
    ("fig1/FIFO+LRU", 602314, 3311346766028599992),
    ("fig1/Graphene+LRU", 602969, 1662238159545852579),
    ("fig1/Graphene+MRD", 602969, 1662238159545852579),
    ("fig1/Dagon", 602314, 3311346766028599992),
    ("tiny_chain/FIFO+LRU", 2531, 2208728996217705522),
    ("tiny_chain/Graphene+LRU", 2531, 2208728996217705522),
    ("tiny_chain/Graphene+MRD", 2531, 2208728996217705522),
    ("tiny_chain/Dagon", 2531, 2208728996217705522),
    ("KMeans-quick/FIFO+LRU", 32538, 10615792872003016651),
    ("KMeans-quick/Graphene+LRU", 32538, 10615792872003016651),
    ("KMeans-quick/Graphene+MRD", 32478, 12115286035362271704),
    ("KMeans-quick/Dagon", 33990, 16248710267207412905),
    ("CC-quick/FIFO+LRU", 51253, 12035404264890145351),
    ("CC-quick/Graphene+LRU", 51318, 5786794090166402431),
    ("CC-quick/Graphene+MRD", 49135, 14090999386727238774),
    ("CC-quick/Dagon", 50006, 14939127398690536188),
];

#[test]
fn simulation_results_match_golden_snapshots() {
    let rows = run_all();
    assert_eq!(rows.len(), GOLDEN.len(), "scenario lineup changed");
    let mut bad = Vec::new();
    for ((name, jct, fp), (gname, gjct, gfp)) in rows.iter().zip(GOLDEN) {
        assert_eq!(name, gname, "scenario order changed");
        if jct != gjct || fp != gfp {
            bad.push(format!(
                "{name}: jct {jct} (want {gjct}), fp {fp} (want {gfp})"
            ));
        }
    }
    assert!(bad.is_empty(), "golden mismatches:\n{}", bad.join("\n"));
}

#[test]
#[ignore = "prints current values for updating GOLDEN"]
fn print_golden() {
    for (name, jct, fp) in run_all() {
        println!("    (\"{name}\", {jct}, {fp}),");
    }
}
