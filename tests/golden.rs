//! Golden simulation snapshots: same-seed runs must produce *identical*
//! results — JCT, per-stage metrics, and locality histograms — across
//! refactors of the scheduling fast path. The constants below were
//! captured from the pre-LocalityIndex sequential scheduler; the batched
//! scheduler must reproduce them bit-for-bit (ISSUE 1 acceptance
//! criterion).
//!
//! To regenerate after an *intentional* semantic change:
//! `cargo test --release --test golden -- --ignored print_golden --nocapture`

use dagon_cluster::{ClusterConfig, ExecId, FaultKind, FaultPlan, SimResult};
use dagon_core::experiments::ExpConfig;
use dagon_core::{run_system, System};
use dagon_dag::examples::{fig1, tiny_chain};
use dagon_dag::JobDag;
use dagon_workloads::Workload;

/// `(jct, fp)` via [`SimResult::fingerprint`]: FNV-1a over every
/// semantically-relevant field of the result — JCT, per-stage
/// first-launch/completion times, launch and finish locality histograms,
/// and the winner task-run locality histogram. Scheduler overhead and
/// cache/fault counters are deliberately excluded — they describe how the
/// result was computed, not what it is.
fn fingerprint(r: &SimResult) -> (u64, u64) {
    (r.jct, r.fingerprint())
}

/// The four scenarios of the acceptance criterion, × the fig8 lineup.
fn scenarios() -> Vec<(&'static str, JobDag, ClusterConfig)> {
    let quick = ExpConfig::quick();
    vec![
        ("fig1", fig1(), ClusterConfig::tiny(2, 16)),
        ("tiny_chain", tiny_chain(8, 500), ClusterConfig::tiny(2, 4)),
        (
            "KMeans-quick",
            Workload::KMeans.build(&quick.scale),
            quick.cluster.clone(),
        ),
        (
            "CC-quick",
            Workload::ConnectedComponent.build(&quick.scale),
            quick.cluster.clone(),
        ),
    ]
}

/// Two pinned chaos scenarios: fully fixed fault plans, so recovery
/// behavior (retry ordering, lineage resubmission, blacklist decisions) is
/// itself golden-pinned, not just the fault-free path.
fn chaos_scenarios() -> Vec<(&'static str, JobDag, ClusterConfig, System)> {
    // A: the lineage-recovery scenario — one executor holds every scan
    // output; crashing it mid-agg destroys cache + disk copies and forces
    // resubmission of the producing stage.
    let mut c1 = ClusterConfig::tiny(1, 2);
    c1.faults = Some(FaultPlan::none().and(
        4500,
        FaultKind::ExecCrash {
            exec: ExecId(0),
            restart_after_ms: Some(2000),
        },
    ));
    // B: a generated chaos plan (crashes + cached-block losses + flaky
    // tasks) on the full Dagon system over the CC workload.
    let quick = ExpConfig::quick();
    let dag_cc = Workload::ConnectedComponent.build(&quick.scale);
    let mut c2 = quick.cluster.clone();
    let n_exec = c2.total_nodes() * c2.execs_per_node;
    c2.faults = Some(FaultPlan::chaos(11, n_exec, 60_000, &dag_cc));
    vec![
        ("tiny_chain+crash", tiny_chain(8, 500), c1, System::dagon()),
        ("CC-quick+chaos11", dag_cc, c2, System::dagon()),
    ]
}

fn run_all() -> Vec<(String, u64, u64)> {
    let mut rows = Vec::new();
    for (wname, dag, cluster) in scenarios() {
        for sys in System::fig8_lineup() {
            let out = run_system(&dag, &cluster, &sys);
            let (jct, fp) = fingerprint(&out.result);
            rows.push((format!("{wname}/{sys}"), jct, fp));
        }
    }
    for (wname, dag, cluster, sys) in chaos_scenarios() {
        let out = run_system(&dag, &cluster, &sys);
        let (jct, fp) = fingerprint(&out.result);
        rows.push((format!("{wname}/{sys}"), jct, fp));
    }
    rows
}

/// Captured from the pre-optimization scheduler (sequential single-pick
/// path), vendored-rand streams, seed = ClusterConfig defaults.
const GOLDEN: &[(&str, u64, u64)] = &[
    ("fig1/FIFO+LRU", 602314, 3311346766028599992),
    ("fig1/Graphene+LRU", 602969, 1662238159545852579),
    ("fig1/Graphene+MRD", 602969, 1662238159545852579),
    ("fig1/Dagon", 602314, 3311346766028599992),
    ("tiny_chain/FIFO+LRU", 2531, 2208728996217705522),
    ("tiny_chain/Graphene+LRU", 2531, 2208728996217705522),
    ("tiny_chain/Graphene+MRD", 2531, 2208728996217705522),
    ("tiny_chain/Dagon", 2531, 2208728996217705522),
    ("KMeans-quick/FIFO+LRU", 32538, 10615792872003016651),
    ("KMeans-quick/Graphene+LRU", 32538, 10615792872003016651),
    ("KMeans-quick/Graphene+MRD", 32478, 12115286035362271704),
    ("KMeans-quick/Dagon", 33990, 16248710267207412905),
    ("CC-quick/FIFO+LRU", 51253, 12035404264890145351),
    ("CC-quick/Graphene+LRU", 51318, 5786794090166402431),
    ("CC-quick/Graphene+MRD", 49135, 14090999386727238774),
    ("CC-quick/Dagon", 50006, 14939127398690536188),
    // Chaos scenarios: fixed fault plans, so recovery paths are pinned too.
    ("tiny_chain+crash/Dagon", 9066, 6312598547193644888),
    ("CC-quick+chaos11/Dagon", 62462, 11643879037322600220),
];

#[test]
fn simulation_results_match_golden_snapshots() {
    let rows = run_all();
    assert_eq!(rows.len(), GOLDEN.len(), "scenario lineup changed");
    let mut bad = Vec::new();
    for ((name, jct, fp), (gname, gjct, gfp)) in rows.iter().zip(GOLDEN) {
        assert_eq!(name, gname, "scenario order changed");
        if jct != gjct || fp != gfp {
            bad.push(format!(
                "{name}: jct {jct} (want {gjct}), fp {fp} (want {gfp})"
            ));
        }
    }
    assert!(bad.is_empty(), "golden mismatches:\n{}", bad.join("\n"));
}

#[test]
#[ignore = "prints current values for updating GOLDEN"]
fn print_golden() {
    for (name, jct, fp) in run_all() {
        println!("    (\"{name}\", {jct}, {fp}),");
    }
}
