//! Cross-crate integration tests: every scheduler × cache combination
//! drives the simulator to completion on real workload DAGs, and the
//! paper's small exact results hold end to end.

// Test-only id mints from small generated counts.
#![allow(clippy::cast_possible_truncation)]

use dagon_cache::PolicyKind;
use dagon_cluster::ClusterConfig;
use dagon_core::system::{PlaceKind, SchedKind, System};
use dagon_core::{run_system, tiny_exec};
use dagon_dag::examples::fig1;
use dagon_dag::MIN_MS;
use dagon_workloads::{Scale, Workload};

fn tiny_cluster() -> ClusterConfig {
    let mut c = ClusterConfig::paper_testbed();
    c.racks = vec![2, 2];
    c.execs_per_node = 2;
    c.exec_cache_mb = 512.0;
    c
}

#[test]
fn every_system_completes_every_workload_at_tiny_scale() {
    let cluster = tiny_cluster();
    let scale = Scale::tiny();
    for w in Workload::PAPER_SEVEN
        .into_iter()
        .chain([Workload::PageRank])
    {
        let dag = w.build(&scale);
        for sched in [
            SchedKind::Fifo,
            SchedKind::Fair,
            SchedKind::CriticalPath,
            SchedKind::Graphene,
            SchedKind::Dagon,
        ] {
            for cache in [
                PolicyKind::None,
                PolicyKind::Lru,
                PolicyKind::Lrc,
                PolicyKind::Mrd,
                PolicyKind::Lrp,
            ] {
                let sys = System::new(sched, PlaceKind::NativeDelay, cache);
                let out = run_system(&dag, &cluster, &sys);
                assert!(out.result.jct > 0, "{w} under {sys}");
                // Every task ran exactly once as a winner.
                let total: u32 = dag.stages().iter().map(|s| s.num_tasks).sum();
                let winners = out
                    .result
                    .metrics
                    .task_runs
                    .iter()
                    .filter(|r| r.winner)
                    .count() as u32;
                assert_eq!(winners, total, "{w} under {sys}");
            }
        }
    }
}

#[test]
fn sensitivity_placement_composes_with_all_orderings() {
    let cluster = tiny_cluster();
    let dag = Workload::KMeans.build(&Scale::tiny());
    for sched in [SchedKind::Fifo, SchedKind::Graphene, SchedKind::Dagon] {
        let sys = System::new(sched, PlaceKind::Sensitivity, PolicyKind::Lrp);
        let out = run_system(&dag, &cluster, &sys);
        assert!(out.result.jct > 0, "{sys}");
    }
}

#[test]
fn fig2_exact_makespans_hold_through_the_full_simulator() {
    // The event simulator (with I/O) must stay close to the abstract
    // 16-vs-12-minute result on the Fig. 1 example: same winner, similar
    // ratio.
    let mut cluster = ClusterConfig::tiny(1, 16);
    cluster.exec_cache_mb = 192.0;
    let fifo = run_system(&fig1(), &cluster, &System::stock_spark());
    let dagon = run_system(&fig1(), &cluster, &System::dagon());
    let ratio = fifo.result.jct as f64 / dagon.result.jct as f64;
    assert!(
        ratio > 1.15,
        "expected ≥15% improvement, got ratio {ratio:.3}"
    );
    // Abstract model is exact.
    let a = tiny_exec::run_tiny(&fig1(), 16, tiny_exec::Mode::Fifo);
    let b = tiny_exec::run_tiny(&fig1(), 16, tiny_exec::Mode::DagAware);
    assert_eq!((a.makespan, b.makespan), (16, 12));
}

#[test]
fn cache_stats_are_consistent() {
    let cluster = tiny_cluster();
    let dag = Workload::PageRank.build(&Scale::tiny());
    let out = run_system(&dag, &cluster, &System::dagon());
    let c = &out.result.metrics.cache;
    // Hits + misses = all accesses to cache-eligible blocks; insertions
    // cannot exceed misses + prefetches + produced blocks.
    assert!(c.hits + c.misses > 0);
    let produced: u64 = dag
        .stages()
        .iter()
        .filter(|s| dag.rdd(s.output).cached)
        .map(|s| s.num_tasks as u64)
        .sum();
    assert!(
        c.insertions <= c.misses + c.prefetches + produced,
        "insertions {} vs misses {} + prefetches {} + produced {produced}",
        c.insertions,
        c.misses,
        c.prefetches
    );
    assert!(c.prefetch_used <= c.prefetches);
}

#[test]
fn utilization_is_a_valid_fraction_everywhere() {
    let cluster = tiny_cluster();
    for w in [Workload::DecisionTree, Workload::ConnectedComponent] {
        let dag = w.build(&Scale::tiny());
        for sys in System::fig8_lineup() {
            let out = run_system(&dag, &cluster, &sys);
            let u = out.result.cpu_utilization();
            assert!(u > 0.0 && u <= 1.0, "{w} {sys}: {u}");
        }
    }
}

#[test]
fn speculation_bounds_straggler_damage() {
    // A stage with one 8× straggler task: speculation should launch at
    // least one copy and not corrupt completion accounting.
    let mut b = dagon_dag::DagBuilder::new("skewed");
    let src = b.hdfs_rdd("in", 16, 32.0);
    let (_, r) = b
        .stage("scan")
        .tasks(16)
        .demand_cpus(1)
        .cpu_ms(2 * MIN_MS / 10)
        .skew(vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 8.0])
        .reads_narrow(src)
        .build();
    let _ = b
        .stage("agg")
        .tasks(2)
        .demand_cpus(1)
        .cpu_ms(500)
        .reads_wide(r)
        .build();
    let dag = b.build().unwrap();
    let mut cluster = tiny_cluster();
    cluster.speculation = Some(dagon_cluster::SpeculationConfig {
        multiplier: 1.5,
        quantile: 0.5,
    });
    let out = run_system(&dag, &cluster, &System::stock_spark());
    assert!(out.result.metrics.speculative_launched >= 1);
    let winners = out
        .result
        .metrics
        .task_runs
        .iter()
        .filter(|r| r.winner)
        .count();
    assert_eq!(winners, 18);
}

#[test]
fn determinism_across_full_stack() {
    let cluster = tiny_cluster();
    let dag = Workload::TriangleCount.build(&Scale::tiny());
    let a = run_system(&dag, &cluster, &System::graphene_mrd());
    let b = run_system(&dag, &cluster, &System::graphene_mrd());
    assert_eq!(a.result.jct, b.result.jct);
    assert_eq!(a.result.metrics.cache, b.result.metrics.cache);
}

#[test]
fn multi_tenant_merge_runs_and_reports_per_job_jct() {
    use dagon_dag::{job_completion_ms, JobSet};
    use dagon_workloads::{Scale, Workload};
    let scale = Scale::tiny();
    let mut set = JobSet::new();
    set.add(Workload::KMeans.build(&scale), 0);
    set.add(Workload::LinearRegression.build(&scale), 2_000);
    let (dag, slots) = set.merge();
    let out = run_system(&dag, &tiny_cluster(), &System::dagon());
    for slot in &slots {
        let jct = job_completion_ms(slot, |s| {
            out.result.metrics.per_stage[s.index()].completed_at
        })
        .expect("job completed");
        assert!(jct > 0, "{}", slot.name);
    }
    // The second job cannot have started before its arrival.
    let first_launch = slots[1]
        .stages
        .iter()
        .filter_map(|s| out.result.metrics.per_stage[s.index()].first_launch)
        .min()
        .unwrap();
    assert!(first_launch >= 2_000, "job 1 started at {first_launch}");
}

#[test]
fn machine_stragglers_are_mitigated_by_speculation() {
    use dagon_workloads::{Scale, Workload};
    let dag = Workload::KMeans.build(&Scale::tiny());
    let mut cfg = tiny_cluster();
    cfg.straggler_prob = 0.08;
    cfg.speculation = None;
    let plain = run_system(&dag, &cfg, &System::stock_spark());
    cfg.speculation = Some(dagon_cluster::SpeculationConfig {
        multiplier: 1.5,
        quantile: 0.5,
    });
    let spec = run_system(&dag, &cfg, &System::stock_spark());
    assert!(spec.result.metrics.speculative_launched > 0);
    assert!(
        spec.result.jct <= plain.result.jct,
        "speculation {} vs plain {}",
        spec.result.jct,
        plain.result.jct
    );
}
