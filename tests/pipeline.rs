//! End-to-end pipeline tests: the full §IV deployment flow (profile on a
//! small dataset → plan with estimates → execute at full scale), plus
//! cache-dynamics integration checks under memory pressure.

use dagon_cache::PolicyKind;
use dagon_cluster::ClusterConfig;
use dagon_core::runner::run_system_with_estimates;
use dagon_core::system::{PlaceKind, SchedKind, System};
use dagon_dag::{StageEstimates, StageId};
use dagon_profiler::online::OnlineEstimator;
use dagon_profiler::sampling::profile_by_sampling;
use dagon_profiler::AppProfiler;
use dagon_workloads::{Scale, Workload};

fn cluster() -> ClusterConfig {
    let mut c = ClusterConfig::paper_testbed();
    c.racks = vec![2, 2];
    c.execs_per_node = 2;
    c.exec_cache_mb = 512.0;
    c.hdfs_replication = 1;
    c
}

#[test]
fn profile_then_run_full_dataset() {
    // §IV: first submission runs a small dataset to obtain the profile,
    // the re-submission runs full-scale with those estimates.
    let full_scale = Scale {
        tasks: 32,
        block_mb: 64.0,
        iterations: 4,
    };
    let small_scale = Scale::profiling_of(&full_scale);
    let small = Workload::KMeans.build(&small_scale);
    let full = Workload::KMeans.build(&full_scale);
    let cfg = cluster();
    let est = profile_by_sampling(&small, &full, &cfg);
    // The sampled estimate for the heavy scan stage must be in the right
    // ballpark (compute 5.5 s + some I/O).
    let scan_est = est.mean_ms(StageId(0));
    assert!(
        (5_000.0..12_000.0).contains(&scan_est),
        "scan estimate {scan_est}"
    );
    let out = run_system_with_estimates(&full, &cfg, &System::dagon(), &est);
    assert!(out.result.jct > 0);
}

#[test]
fn noisy_estimates_degrade_gracefully() {
    // Dagon planning with 40% duration error must still complete and stay
    // within 2x of the oracle-planned run (robustness of Alg. 1/2 to
    // profiling error).
    let scale = Scale {
        tasks: 32,
        block_mb: 64.0,
        iterations: 4,
    };
    let dag = Workload::LinearRegression.build(&scale);
    let cfg = cluster();
    let oracle = run_system_with_estimates(
        &dag,
        &cfg,
        &System::dagon(),
        &AppProfiler::perfect().estimate(&dag),
    );
    let noisy = run_system_with_estimates(
        &dag,
        &cfg,
        &System::dagon(),
        &AppProfiler::noisy(0.4, 9).estimate(&dag),
    );
    assert!(
        (noisy.result.jct as f64) < oracle.result.jct as f64 * 2.0,
        "noisy {} vs oracle {}",
        noisy.result.jct,
        oracle.result.jct
    );
}

#[test]
fn online_estimator_corrects_a_bad_prior() {
    let scale = Scale::tiny();
    let dag = Workload::KMeans.build(&scale);
    // Start from a prior that is 10x off for stage 0.
    let mut prior = StageEstimates::exact(&dag);
    prior.mean_task_ms[0] *= 10.0;
    let mut oe = OnlineEstimator::new(prior, 0.4);
    for _ in 0..20 {
        oe.observe(StageId(0), dag.stage(StageId(0)).cpu_ms);
    }
    let corrected = oe.current().mean_ms(StageId(0));
    let truth = dag.stage(StageId(0)).cpu_ms as f64;
    assert!(
        (corrected - truth).abs() / truth < 0.05,
        "{corrected} vs {truth}"
    );
}

#[test]
fn lrp_under_pressure_prefers_reused_blocks() {
    // ConnectedComponent with a cache far smaller than the edge RDD: LRP
    // must deliver at least as many byte-hits as LRU under the Dagon
    // scheduler, and must proactively drop dead message blocks.
    let scale = Scale {
        tasks: 24,
        block_mb: 64.0,
        iterations: 5,
    };
    let dag = Workload::ConnectedComponent.build(&scale);
    let mut cfg = cluster();
    cfg.exec_cache_mb = 384.0;
    let run = |cache| {
        let sys = System::new(SchedKind::Dagon, PlaceKind::Sensitivity, cache);
        dagon_core::run_system(&dag, &cfg, &sys)
    };
    let lru = run(PolicyKind::Lru);
    let lrp = run(PolicyKind::Lrp);
    assert!(lrp.result.metrics.cache.proactive_evictions > 0);
    let lru_b = lru.result.metrics.cache.byte_hit_ratio();
    let lrp_b = lrp.result.metrics.cache.byte_hit_ratio();
    assert!(
        lrp_b >= lru_b * 0.9,
        "LRP byte hits {lrp_b:.3} collapsed vs LRU {lru_b:.3}"
    );
    // And JCT must not regress materially.
    assert!(
        (lrp.result.jct as f64) < lru.result.jct as f64 * 1.15,
        "LRP {} vs LRU {}",
        lrp.result.jct,
        lru.result.jct
    );
}

#[test]
fn prefetch_restores_evicted_blocks() {
    // With prefetching enabled and pressure, the Dagon system must issue
    // prefetches and some must be used.
    let scale = Scale {
        tasks: 24,
        block_mb: 64.0,
        iterations: 6,
    };
    let dag = Workload::PageRank.build(&scale);
    let mut cfg = cluster();
    cfg.exec_cache_mb = 384.0;
    cfg.prefetch_free_frac = Some(0.05);
    let out = dagon_core::run_system(&dag, &cfg, &System::dagon());
    let c = &out.result.metrics.cache;
    assert!(c.prefetches > 0, "no prefetches issued");
    assert!(c.prefetch_used <= c.prefetches);
}
