//! Property-based chaos: random fault plans against random DAGs. Whatever
//! the generator produces, recovery must hold the same structural
//! invariants the curated chaos matrix checks — completion, exactly-once
//! effective execution, no winner overlapping a dead window, a balanced
//! cache ledger, and no speed-up from faults.

use dagon_cluster::{ClusterConfig, FaultKind, FaultPlan, SimResult};
use dagon_core::run_system;
use dagon_core::system::System;
use dagon_dag::generate::{random_dag, GenParams};
use dagon_dag::JobDag;
use proptest::prelude::*;

fn small_params() -> GenParams {
    GenParams {
        stages: 6,
        tasks: (1, 6),
        demand_cpus: (1, 2),
        cpu_ms: (100, 4_000),
        block_mb: (8.0, 64.0),
        ..Default::default()
    }
}

fn cluster() -> ClusterConfig {
    let mut c = ClusterConfig::paper_testbed();
    c.racks = vec![2, 1];
    c.execs_per_node = 2;
    c.exec_cache_mb = 256.0;
    c
}

fn num_execs(c: &ClusterConfig) -> u32 {
    c.total_nodes() * c.execs_per_node
}

/// Slim invariant suite shared by the properties and the pinned
/// regressions. Returns an error string naming every violated invariant.
fn check(
    dag: &JobDag,
    plan: &FaultPlan,
    faulty: &SimResult,
    baseline: &SimResult,
) -> Result<(), String> {
    let m = &faulty.metrics;
    let mut errs = Vec::new();
    for (i, s) in m.per_stage.iter().enumerate() {
        if s.completed_at.is_none() {
            errs.push(format!("stage {i} never completed"));
        }
    }
    let total: u64 = dag.stages().iter().map(|s| s.num_tasks as u64).sum();
    let winners = m.task_runs.iter().filter(|r| r.winner).count() as u64;
    if winners != total + m.faults.tasks_recomputed {
        errs.push(format!(
            "winners {winners} != tasks {total} + recomputed {}",
            m.faults.tasks_recomputed
        ));
    }
    if m.task_runs.iter().any(|r| r.winner && r.failed) {
        errs.push("a failed attempt won".into());
    }
    let n_exec = num_execs(&cluster()) as usize;
    let mut windows = vec![Vec::new(); n_exec];
    for fe in &plan.events {
        if let FaultKind::ExecCrash {
            exec,
            restart_after_ms,
        } = fe.kind
        {
            let t = fe.at.max(1);
            windows[exec.index()].push((t, restart_after_ms.map_or(u64::MAX, |d| t + d)));
        }
    }
    for r in m.task_runs.iter().filter(|r| r.winner) {
        for &(crash, restart) in &windows[r.exec.index()] {
            if r.start > crash && r.start < restart {
                errs.push(format!(
                    "{:?} launched in dead window of {:?}",
                    r.task, r.exec
                ));
            }
            if r.start < crash && r.end > crash {
                errs.push(format!("{:?} survived the crash of {:?}", r.task, r.exec));
            }
        }
    }
    let c = &m.cache;
    if c.insertions != c.evictions + c.proactive_evictions + c.lost + c.resident_end {
        errs.push(format!(
            "cache ledger: {} inserted != {} evicted + {} proactive + {} lost + {} resident",
            c.insertions, c.evictions, c.proactive_evictions, c.lost, c.resident_end
        ));
    }
    if faulty.jct < baseline.jct {
        errs.push(format!(
            "faulty jct {} < baseline {}",
            faulty.jct, baseline.jct
        ));
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs.join("; "))
    }
}

fn check_random_chaos(dag_seed: u64, fault_seed: u64) {
    let dag = random_dag(&small_params(), dag_seed);
    let cl = cluster();
    let sys = System::dagon();
    let baseline = run_system(&dag, &cl, &sys).result;
    let plan = FaultPlan::chaos(fault_seed, num_execs(&cl), baseline.jct, &dag);
    let mut faulty_cl = cl.clone();
    faulty_cl.faults = Some(plan.clone());
    let faulty = run_system(&dag, &faulty_cl, &sys).result;
    if let Err(e) = check(&dag, &plan, &faulty, &baseline) {
        panic!("dag_seed={dag_seed} fault_seed={fault_seed}: {e}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A generated chaos plan against a generated DAG always recovers and
    /// upholds the invariant suite.
    #[test]
    fn random_chaos_plans_recover_on_random_dags(
        dag_seed in 0u64..30,
        fault_seed in 0u64..30,
    ) {
        check_random_chaos(dag_seed, fault_seed);
    }

    /// The differential guarantee holds on arbitrary DAGs too: an armed but
    /// empty plan is bit-identical to no plan at all.
    #[test]
    fn empty_plan_is_identity_on_random_dags(seed in 0u64..40) {
        let dag = random_dag(&small_params(), seed);
        let cl = cluster();
        let sys = System::dagon();
        let plain = run_system(&dag, &cl, &sys).result;
        let mut armed = cl.clone();
        armed.faults = Some(FaultPlan::none());
        let res = run_system(&dag, &armed, &sys).result;
        prop_assert_eq!(plain.fingerprint(), res.fingerprint());
    }

    /// Pure flakiness (no scheduled faults): every injected failure is
    /// retried to completion and each retry shows up in the metrics.
    #[test]
    fn injected_flakiness_always_retires(seed in 0u64..20) {
        let dag = random_dag(&small_params(), seed);
        let cl = cluster();
        let sys = System::dagon();
        let mut flaky = cl.clone();
        let mut plan = FaultPlan::with_task_failures(0.05, seed);
        plan.max_task_retries = 64;
        flaky.faults = Some(plan);
        let res = run_system(&dag, &flaky, &sys).result;
        prop_assert!(res.metrics.per_stage.iter().all(|s| s.completed_at.is_some()));
        let m = &res.metrics;
        let total: u64 = dag.stages().iter().map(|s| s.num_tasks as u64).sum();
        let winners = m.task_runs.iter().filter(|r| r.winner).count() as u64;
        prop_assert_eq!(winners, total + m.faults.tasks_recomputed);
        // Every injected failure produced a visible retry; no winner failed.
        prop_assert!(!m.task_runs.iter().any(|r| r.winner && r.failed));
        prop_assert!(
            m.task_runs.iter().filter(|r| r.failed).count() as u64 >= m.faults.task_failures
                || m.faults.task_failures == 0
        );
    }
}

/// Checked-in `fault_props.proptest-regressions` cases, pinned explicitly
/// so they run even where the regression file is not consulted.
#[test]
fn chaos_regression_dag0_fault7() {
    check_random_chaos(0, 7);
}

#[test]
fn chaos_regression_dag13_fault21() {
    check_random_chaos(13, 21);
}
