//! Exported-artifact validity: the Chrome `trace_event` JSON is
//! schema-valid and internally consistent (every span inside the run
//! horizon, no two spans overlapping on one lane), and the metrics
//! registry of a paper-scale run carries the full pinned key set with
//! values that cross-check against the `SimResult` it was derived from.
//!
//! The JSON is re-parsed with `dagon_obs::json` — an independent
//! recursive-descent parser, not the emitter — so a malformed escape or an
//! unbalanced bracket cannot pass.

use std::collections::BTreeMap;

use dagon_core::experiments::ExpConfig;
use dagon_core::{run_system, run_system_traced, System};
use dagon_obs::json::{parse, Value};
use dagon_obs::{chrome_trace_json, stage_timeline_json, summary_json, RingRecorder, TraceMeta};
use dagon_workloads::Workload;

fn traced_cc_quick() -> (dagon_core::RunOutcome, TraceMeta) {
    let quick = ExpConfig::quick();
    let dag = Workload::ConnectedComponent.build(&quick.scale);
    let out = run_system_traced(
        &dag,
        &quick.cluster,
        &System::dagon(),
        Box::new(RingRecorder::unbounded()),
    );
    let meta = TraceMeta {
        run: "CC_quick_dagon".into(),
        workload: out.workload.clone(),
        system: out.system.clone(),
        jct_ms: out.result.jct as f64,
    };
    (out, meta)
}

#[test]
fn chrome_trace_is_schema_valid_and_consistent() {
    let (out, meta) = traced_cc_quick();
    let doc = parse(&chrome_trace_json(&meta, &out.result.trace)).expect("trace parses");
    let top = doc.as_obj().expect("top-level object");
    assert_eq!(
        top.get("displayTimeUnit").and_then(Value::as_str),
        Some("ms")
    );
    let other = top.get("otherData").and_then(Value::as_obj).unwrap();
    assert_eq!(other.get("system").and_then(Value::as_str), Some("Dagon"));
    let events = top.get("traceEvents").and_then(Value::as_arr).unwrap();
    assert!(!events.is_empty());

    let horizon_us = (out.result.jct + 1) as f64 * 1000.0;
    // (pid, tid) -> [(ts, ts+dur)]: spans per lane, for the overlap check.
    let mut lanes: BTreeMap<(u64, u64), Vec<(f64, f64)>> = BTreeMap::new();
    let (mut spans, mut metas, mut instants) = (0, 0, 0);
    for ev in events {
        let e = ev.as_obj().expect("event object");
        let ph = e.get("ph").and_then(Value::as_str).expect("ph");
        assert!(e.get("name").and_then(Value::as_str).is_some());
        let pid = e.get("pid").and_then(Value::as_f64).expect("pid");
        let tid = e.get("tid").and_then(Value::as_f64).expect("tid");
        match ph {
            "M" => metas += 1,
            "X" => {
                spans += 1;
                let ts = e.get("ts").and_then(Value::as_f64).expect("ts");
                let dur = e.get("dur").and_then(Value::as_f64).expect("dur");
                assert!(ts >= 0.0 && dur >= 1000.0, "sub-ms span: ts {ts} dur {dur}");
                assert!(ts + dur <= horizon_us, "span past horizon");
                let args = e.get("args").and_then(Value::as_obj).expect("span args");
                assert!(args.get("stage").and_then(Value::as_str).is_some());
                assert!(args.get("outcome").and_then(Value::as_str).is_some());
                lanes
                    .entry((pid as u64, tid as u64))
                    .or_default()
                    .push((ts, ts + dur));
            }
            "i" => {
                instants += 1;
                assert_eq!(e.get("s").and_then(Value::as_str), Some("p"));
                assert!(e.get("ts").and_then(Value::as_f64).is_some());
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(spans > 0 && metas > 0, "{spans} spans, {metas} metadata");
    let _ = instants; // fault-free run: instants may legitimately be zero
                      // Lane packing invariant: one core-row never draws overlapping tasks.
    for ((pid, tid), mut sp) in lanes {
        sp.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in sp.windows(2) {
            assert!(
                w[1].0 >= w[0].1,
                "exec {pid} lane {tid}: spans overlap ({:?} then {:?})",
                w[0],
                w[1]
            );
        }
    }
}

#[test]
fn stage_timeline_and_summary_parse_and_cross_check() {
    let (out, meta) = traced_cc_quick();
    let stages = parse(&stage_timeline_json(&out.result.trace)).expect("stages parse");
    let rows = stages
        .as_obj()
        .and_then(|o| o.get("stages"))
        .and_then(Value::as_arr)
        .expect("stages array");
    assert!(!rows.is_empty());
    for row in rows {
        let r = row.as_obj().unwrap();
        let launches = r.get("launches").and_then(Value::as_f64).unwrap();
        let finishes = r.get("finishes").and_then(Value::as_f64).unwrap();
        assert!(launches >= finishes, "more finishes than launches");
    }

    let registry = out.result.registry();
    let summary = parse(&summary_json(&meta, &registry, &out.result.trace)).expect("summary");
    let top = summary.as_obj().unwrap();
    assert_eq!(
        top.get("jct_ms").and_then(Value::as_f64),
        Some(out.result.jct as f64)
    );
    let recorded = top
        .get("trace")
        .and_then(Value::as_obj)
        .and_then(|t| t.get("recorded"))
        .and_then(Value::as_f64)
        .unwrap();
    assert_eq!(recorded as usize, out.result.trace.len());
    // Event kind counts must sum back to the record count.
    let kinds = top.get("events").and_then(Value::as_obj).unwrap();
    let total: f64 = kinds.values().filter_map(Value::as_f64).sum();
    assert_eq!(total as usize, out.result.trace.len());
}

/// The registry key set is part of the subsystem's interface: dashboards
/// and diff tooling key on these names. Adding a metric must extend this
/// pinned list; renaming or dropping one is a breaking change.
const REGISTRY_KEYS: &[&str] = &[
    "cache/byte_hit_ratio",
    "cache/evictions",
    "cache/hit_kb",
    "cache/hit_ratio",
    "cache/hits",
    "cache/insertions",
    "cache/lost",
    "cache/miss_kb",
    "cache/misses",
    "cache/prefetch_used",
    "cache/prefetches",
    "cache/proactive_evictions",
    "cache/resident_end",
    "faults/attempts_killed",
    "faults/disk_blocks_lost",
    "faults/exec_crashes",
    "faults/exec_restarts",
    "faults/execs_blacklisted",
    "faults/stage_resubmissions",
    "faults/task_failures",
    "faults/tasks_recomputed",
    "run/avg_task_ms",
    "run/cpu_utilization",
    "run/high_locality_fraction",
    "run/jct_ms",
    "run/speculative_launched",
    "run/speculative_won",
    "run/task_duration_ms",
    "run/total_cores",
    "sched/assignments_discarded",
    "sched/batches_discarded",
    "sched/ect_heap_pops",
    "sched/ect_heap_stale",
    "sched/index_invalidations",
    "sched/inv_index_hits",
    "sched/inv_index_rebuilds",
    "sched/inv_index_updates",
    "sched/locality_queries",
    "sched/locality_recomputes",
    "sched/ready_list_rebuilds",
    "sched/schedule_invocations",
    "sched/score_cache_hits",
    "sched/score_cache_invalidations",
    "sched/score_cache_misses",
    "sched/slot_memo_hits",
    "sched/slot_memo_misses",
    "sched/valid_level_rebuilds",
    "sched/view_deltas",
    "sched/view_rebuilds",
];

#[test]
fn metrics_registry_snapshot_on_paper_scale_run() {
    let paper = ExpConfig::paper();
    let dag = Workload::ConnectedComponent.build(&paper.scale);
    let out = run_system(&dag, &paper.cluster, &System::dagon());
    let registry = out.result.registry();

    let keys: Vec<&str> = registry.iter().map(|(k, _)| k).collect();
    assert_eq!(keys, REGISTRY_KEYS, "registry key set drifted");

    // Values cross-check against the structs they were derived from.
    let doc = parse(&registry.to_json()).expect("registry json parses");
    let obj = doc.as_obj().unwrap();
    let num = |k: &str| obj.get(k).and_then(Value::as_f64).unwrap();
    assert_eq!(num("cache/hits") as u64, out.result.metrics.cache.hits);
    assert_eq!(num("run/jct_ms") as u64, out.result.jct);
    assert!((0.0..=1.0).contains(&num("cache/hit_ratio")));
    assert!((0.0..=1.0).contains(&num("run/cpu_utilization")));
    // The stage-slot memo must actually absorb lookups at paper scale.
    assert!(
        num("sched/slot_memo_hits") > 0.0,
        "slot memo never hit at paper scale"
    );
    // The incremental ready list must never be rebuilt after startup.
    assert_eq!(
        num("sched/ready_list_rebuilds") as u64,
        1,
        "ready list rebuilt mid-run"
    );
    // Same discipline for the inverted pending-work index: one build at
    // startup, incrementally maintained ever after — and it must actually
    // absorb placement probes at paper scale.
    assert_eq!(
        num("sched/inv_index_rebuilds") as u64,
        1,
        "inverted locality index rebuilt mid-run"
    );
    assert!(
        num("sched/inv_index_hits") > 0.0,
        "inverted-index gates never skipped a probe at paper scale"
    );
    assert!(
        num("sched/inv_index_updates") > 0.0,
        "inverted index never updated at paper scale"
    );
    // The lazy free-executor heap must be live (pops) and actually skip
    // stale entries under consume/release churn.
    assert!(num("sched/ect_heap_pops") > 0.0);
    let hist = obj
        .get("run/task_duration_ms")
        .and_then(Value::as_obj)
        .expect("task-duration histogram");
    assert_eq!(
        hist.get("type").and_then(Value::as_str),
        Some("log_histogram")
    );
    let winners = out
        .result
        .metrics
        .task_runs
        .iter()
        .filter(|t| t.winner)
        .count();
    assert_eq!(
        hist.get("total").and_then(Value::as_f64).unwrap() as usize,
        winners
    );
}
