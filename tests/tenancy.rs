//! Online multi-tenant acceptance suite.
//!
//! * **Differential**: a single-job stream under dynamic admission is
//!   bit-identical to the classic batch run — pinned against the same
//!   constants as `tests/golden.rs`.
//! * **Static ≡ dynamic**: the `multi.rs`-style pre-merge lowering
//!   (arrivals baked into `release_ms`) and dynamic admission produce the
//!   same per-job JCTs for the same job set under FIFO.
//! * **Determinism**: same seed ⇒ bit-identical stream, schedule and
//!   per-job outcomes; different seed ⇒ different stream.
//! * **Starvation regression**: a bursty heavy tenant cannot starve a
//!   light tenant under fair share.
//! * **Chaos**: an executor crash mid-stream recovers every tenant's jobs,
//!   deterministically.

use dagon_cluster::{AdmissionConfig, ArrivalSpec, ClusterConfig, ExecId, FaultKind, FaultPlan};
use dagon_core::experiments::ExpConfig;
use dagon_core::tenancy::{run_tenant_stream, TenantPolicy};
use dagon_core::{run_system, System};
use dagon_tenancy::{
    BoundedPareto, ClientKind, StreamJob, StreamOptions, TenantReport, TenantSpec, TenantStream,
};
use dagon_workloads::{Scale, Workload};

fn one_job_stream(w: Workload, scale: &Scale) -> TenantStream {
    let jobs = vec![StreamJob {
        tenant: 0,
        name: w.name().to_string(),
        arrival: ArrivalSpec::Open { at: 0 },
        dag: w.build(scale),
    }];
    TenantStream::from_jobs(&jobs, Vec::new(), &StreamOptions::default())
}

/// A one-job stream must reproduce the batch golden bit-for-bit: same
/// constants `tests/golden.rs` pins for CC-quick under stock Spark.
#[test]
fn single_job_stream_matches_batch_golden() {
    let quick = ExpConfig::quick();
    let stream = one_job_stream(Workload::ConnectedComponent, &quick.scale);
    let out = run_tenant_stream(
        &stream,
        &quick.cluster,
        TenantPolicy::Fifo,
        AdmissionConfig::default(),
    );
    assert_eq!(out.result.jct, 51253, "dynamic single-job JCT drifted");
    assert_eq!(
        out.result.fingerprint(),
        12035404264890145351,
        "dynamic single-job fingerprint drifted from the batch golden"
    );
    // The job outcome row agrees with the simulation.
    assert_eq!(out.result.jobs.len(), 1);
    assert_eq!(out.result.jobs[0].completed_ms, Some(out.result.jct));
    assert_eq!(out.result.jobs[0].admitted_ms, Some(0));
}

/// Same differential for the full Dagon system: `WFair+Dagon` over a
/// single tenant degenerates to the plain Dagon scheduler (the fair-share
/// comparator returns `Equal` within one tenant), so the whole stack —
/// estimates, placement, LRP cache — must match the batch run.
#[test]
fn single_tenant_wfair_dagon_matches_batch_dagon() {
    let quick = ExpConfig::quick();
    let stream = one_job_stream(Workload::ConnectedComponent, &quick.scale);
    let dynamic = run_tenant_stream(
        &stream,
        &quick.cluster,
        TenantPolicy::WeightedFairDagon,
        AdmissionConfig::default(),
    );
    let batch = run_system(
        &Workload::ConnectedComponent.build(&quick.scale),
        &quick.cluster,
        &System::dagon(),
    );
    assert_eq!(dynamic.result.jct, batch.result.jct);
    assert_eq!(dynamic.result.fingerprint(), batch.result.fingerprint());
}

fn open_loop_jobs(scale: &Scale) -> Vec<StreamJob> {
    let mk = |tenant: u32, w: Workload, at: u64, i: u32| StreamJob {
        tenant,
        name: format!("t{tenant}/{}#{i}", w.abbrev()),
        arrival: ArrivalSpec::Open { at },
        dag: w.build(scale),
    };
    vec![
        mk(0, Workload::KMeans, 0, 0),
        mk(1, Workload::LinearRegression, 2_000, 0),
        mk(0, Workload::TriangleCount, 4_000, 1),
    ]
}

/// The documented `multi.rs` equivalence: baking arrivals into
/// `release_ms` (static pre-merge) and gating via dynamic admission run
/// the same schedule under FIFO — same job set, same arrivals, same
/// per-job JCTs.
#[test]
fn static_premerge_and_dynamic_admission_agree_under_fifo() {
    let scale = Scale::tiny();
    let jobs = open_loop_jobs(&scale);
    // Identical builder walk, only the release mode differs — so stage ids
    // line up one-to-one across the two lowerings.
    let opts = |static_release| StreamOptions {
        share_inputs: false,
        static_release,
    };
    let dynamic = TenantStream::from_jobs(&jobs, Vec::new(), &opts(false));
    let statik = TenantStream::from_jobs(&jobs, Vec::new(), &opts(true));
    let cluster = ClusterConfig::tiny(4, 8);

    let dyn_out = run_tenant_stream(
        &dynamic,
        &cluster,
        TenantPolicy::Fifo,
        AdmissionConfig::default(),
    );
    let stat_out = run_system(&statik.dag, &cluster, &System::stock_spark());

    for (spec, outcome) in statik.specs.iter().zip(&dyn_out.result.jobs) {
        let ArrivalSpec::Open { at } = spec.arrival else {
            unreachable!("open-loop job set")
        };
        let static_jct = spec
            .stages
            .iter()
            .map(|s| {
                stat_out.result.metrics.per_stage[s.index()]
                    .completed_at
                    .expect("static run completes every stage")
            })
            .max()
            .unwrap()
            - at;
        let dynamic_jct = outcome
            .completed_ms
            .expect("dynamic run completes every job")
            - outcome.arrival_ms;
        assert_eq!(
            static_jct, dynamic_jct,
            "{}: static pre-merge and dynamic admission disagree",
            spec.name
        );
    }
    assert_eq!(dyn_out.result.jct, stat_out.result.jct, "makespans differ");
}

fn seeded_tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec {
            name: "poisson".into(),
            weight: 1,
            mix: vec![Workload::KMeans, Workload::LinearRegression],
            tasks: BoundedPareto::new(1.5, 4.0, 16.0),
            client: ClientKind::OpenPoisson {
                jobs: 3,
                mean_interarrival_ms: 8_000,
            },
        },
        TenantSpec {
            name: "closed".into(),
            weight: 2,
            mix: vec![Workload::LogisticRegression],
            tasks: BoundedPareto::fixed(8.0),
            client: ClientKind::ClosedLoop {
                clients: 1,
                jobs_per_client: 3,
                mean_think_ms: 3_000,
            },
        },
    ]
}

/// Same seed ⇒ bit-identical run (schedule fingerprint *and* per-job
/// outcome rows); different seed ⇒ a different stream.
#[test]
fn seeded_streams_are_deterministic() {
    let scale = Scale::tiny();
    let cluster = ClusterConfig::tiny(4, 8);
    let opts = StreamOptions::default();
    let run = |seed: u64| {
        let stream = TenantStream::generate(&seeded_tenants(), seed, &scale, &opts);
        run_tenant_stream(
            &stream,
            &cluster,
            TenantPolicy::WeightedFairDagon,
            AdmissionConfig::default(),
        )
    };
    let a = run(21);
    let b = run(21);
    assert_eq!(a.result.jct, b.result.jct);
    assert_eq!(a.result.fingerprint(), b.result.fingerprint());
    assert_eq!(a.result.jobs, b.result.jobs, "outcome rows must replay");
    let c = run(22);
    assert_ne!(
        (a.result.jct, a.result.fingerprint()),
        (c.result.jct, c.result.fingerprint()),
        "different seed should perturb the run"
    );
}

/// Starvation regression: tenant 0 dumps a burst of heavy jobs at t=0;
/// tenant 1 submits one small job shortly after. Under tenant-blind FIFO
/// the small job waits behind the whole burst (its stages carry higher
/// ids); under fair share it interleaves. The light tenant's JCT under
/// Fair must beat FIFO by a wide margin, and must not wait for the burst
/// to drain.
#[test]
fn fair_share_prevents_light_tenant_starvation() {
    let scale = Scale::tiny();
    let mut jobs: Vec<StreamJob> = (0..4)
        .map(|i| StreamJob {
            tenant: 0,
            name: format!("heavy#{i}"),
            arrival: ArrivalSpec::Open { at: 0 },
            dag: Workload::ConnectedComponent.build(&scale),
        })
        .collect();
    jobs.push(StreamJob {
        tenant: 1,
        name: "light".into(),
        arrival: ArrivalSpec::Open { at: 1_000 },
        dag: Workload::LinearRegression.build(&Scale { tasks: 4, ..scale }),
    });
    let stream = TenantStream::from_jobs(&jobs, Vec::new(), &StreamOptions::default());
    let cluster = ClusterConfig::tiny(2, 4);

    let jct_of = |policy| {
        let out = run_tenant_stream(&stream, &cluster, policy, AdmissionConfig::default());
        let light = &out.result.jobs[4];
        assert!(!light.rejected);
        (
            light.completed_ms.expect("light job completes") - light.arrival_ms,
            out.result.jct,
        )
    };
    let (fifo_jct, _) = jct_of(TenantPolicy::Fifo);
    let (fair_jct, fair_makespan) = jct_of(TenantPolicy::Fair);
    assert!(
        fair_jct * 2 < fifo_jct,
        "fair share gave the light tenant no headway: fair {fair_jct}ms vs fifo {fifo_jct}ms"
    );
    assert!(
        fair_jct < fair_makespan / 2,
        "light job should finish well before the heavy burst drains \
         ({fair_jct}ms vs makespan {fair_makespan}ms)"
    );
}

/// Chaos mid-stream: an executor crashes while jobs from several tenants
/// are in flight and restarts later. Every job still completes, per-tenant
/// accounting stays consistent (the debug oracles run throughout), and the
/// recovery replays bit-identically.
#[test]
fn executor_crash_mid_stream_recovers_every_tenant() {
    let scale = Scale::tiny();
    let opts = StreamOptions::default();
    let stream = TenantStream::generate(&seeded_tenants(), 5, &scale, &opts);
    let mut cluster = ClusterConfig::tiny(4, 8);
    cluster.faults = Some(FaultPlan::none().and(
        6_000,
        FaultKind::ExecCrash {
            exec: ExecId(1),
            restart_after_ms: Some(4_000),
        },
    ));
    let run = || {
        run_tenant_stream(
            &stream,
            &cluster,
            TenantPolicy::Fair,
            AdmissionConfig::default(),
        )
    };
    let a = run();
    assert!(
        a.result.metrics.faults.exec_crashes >= 1,
        "crash not applied"
    );
    assert!(
        a.result.jobs.iter().all(|j| j.completed_ms.is_some()),
        "a tenant's job was lost to the crash"
    );
    let report = TenantReport::new(&stream, &a.result);
    assert_eq!(report.tenants.len(), 2);
    for t in &report.tenants {
        assert_eq!(t.completed, 3, "{}: wrong completion count", t.name);
        assert_eq!(t.rejected, 0);
    }
    let b = run();
    assert_eq!(a.result.fingerprint(), b.result.fingerprint());
    assert_eq!(a.result.jobs, b.result.jobs);
}

/// Shared sources actually share: with input sharing on, a later job's
/// scan of the same dataset hits blocks the earlier job materialized or
/// cached — visible as per-tenant cache hits for *both* tenants.
#[test]
fn shared_inputs_give_cross_tenant_cache_hits() {
    let scale = Scale::tiny();
    let mk = |tenant: u32, at: u64| StreamJob {
        tenant,
        name: format!("t{tenant}"),
        arrival: ArrivalSpec::Open { at },
        dag: Workload::ConnectedComponent.build(&scale),
    };
    let jobs = vec![mk(0, 0), mk(1, 15_000)];
    let cluster = ClusterConfig::tiny(4, 8);
    let shared = TenantStream::from_jobs(
        &jobs,
        Vec::new(),
        &StreamOptions {
            share_inputs: true,
            static_release: false,
        },
    );
    let out = run_tenant_stream(
        &shared,
        &cluster,
        TenantPolicy::WeightedFairDagon,
        AdmissionConfig::default(),
    );
    let report = TenantReport::new(&shared, &out.result);
    assert!(
        report.tenants[1].cache_hits > 0,
        "tenant 1 re-scanned a shared dataset without hitting cache"
    );
}
