//! The zero-overhead-when-disabled contract of `dagon-obs`, half one:
//! attaching a recorder must not change the simulation. Every scenario is
//! run twice — once bare (NullSink, the default) and once with an
//! unbounded ring recorder — and the `(jct, fingerprint)` pair must be
//! bit-identical. Covers the fault-free golden lineup *and* the pinned
//! chaos plans, so the recorder is proven inert on the recovery paths
//! (crashes, lineage resubmission, blacklisting) too.

use dagon_cluster::{ClusterConfig, ExecId, FaultKind, FaultPlan};
use dagon_core::experiments::ExpConfig;
use dagon_core::{run_system, run_system_traced, System};
use dagon_dag::examples::{fig1, tiny_chain};
use dagon_dag::JobDag;
use dagon_obs::RingRecorder;
use dagon_workloads::Workload;

fn scenarios() -> Vec<(&'static str, JobDag, ClusterConfig, System)> {
    let quick = ExpConfig::quick();
    let dag_cc = Workload::ConnectedComponent.build(&quick.scale);

    // The pinned chaos plans from tests/golden.rs: recovery paths must be
    // equally recorder-invariant.
    let mut crash = ClusterConfig::tiny(1, 2);
    crash.faults = Some(FaultPlan::none().and(
        4500,
        FaultKind::ExecCrash {
            exec: ExecId(0),
            restart_after_ms: Some(2000),
        },
    ));
    let mut chaos = quick.cluster.clone();
    let n_exec = chaos.total_nodes() * chaos.execs_per_node;
    chaos.faults = Some(FaultPlan::chaos(11, n_exec, 60_000, &dag_cc));

    let mut rows = Vec::new();
    for sys in System::fig8_lineup() {
        rows.push(("fig1", fig1(), ClusterConfig::tiny(2, 16), sys.clone()));
        rows.push((
            "KMeans-quick",
            Workload::KMeans.build(&quick.scale),
            quick.cluster.clone(),
            sys.clone(),
        ));
        rows.push(("CC-quick", dag_cc.clone(), quick.cluster.clone(), sys));
    }
    rows.push((
        "tiny_chain+crash",
        tiny_chain(8, 500),
        crash,
        System::dagon(),
    ));
    rows.push(("CC-quick+chaos11", dag_cc, chaos, System::dagon()));
    rows
}

#[test]
fn recorder_on_and_off_produce_identical_results() {
    for (name, dag, cluster, sys) in scenarios() {
        let bare = run_system(&dag, &cluster, &sys);
        let traced = run_system_traced(&dag, &cluster, &sys, Box::new(RingRecorder::unbounded()));
        assert_eq!(
            (bare.result.jct, bare.result.fingerprint()),
            (traced.result.jct, traced.result.fingerprint()),
            "{name}/{sys}: recorder changed the simulation"
        );
        assert!(
            bare.result.trace.is_empty(),
            "{name}/{sys}: NullSink run captured events"
        );
        assert!(
            !traced.result.trace.is_empty(),
            "{name}/{sys}: recorder run captured nothing"
        );
        assert_eq!(traced.result.trace.dropped, 0);
    }
}

#[test]
fn traced_chaos_run_records_fault_events() {
    let quick = ExpConfig::quick();
    let dag = Workload::ConnectedComponent.build(&quick.scale);
    let mut cluster = quick.cluster.clone();
    let n_exec = cluster.total_nodes() * cluster.execs_per_node;
    cluster.faults = Some(FaultPlan::chaos(11, n_exec, 60_000, &dag));
    let out = run_system_traced(
        &dag,
        &cluster,
        &System::dagon(),
        Box::new(RingRecorder::unbounded()),
    );
    let kinds: std::collections::BTreeSet<&'static str> = out
        .result
        .trace
        .records
        .iter()
        .map(|r| r.event.kind())
        .collect();
    for k in [
        "task-launch",
        "task-finish",
        "sched-decision",
        "cache-admit",
        "cache-hit",
        "cache-miss",
        "exec-crash",
        "task-resubmitted",
    ] {
        assert!(
            kinds.contains(k),
            "chaos trace has no {k} events: {kinds:?}"
        );
    }
    // Timestamps are sim-clock, monotonically non-decreasing by recording
    // order, and bounded by the final JCT.
    let mut last = 0;
    for r in &out.result.trace.records {
        assert!(r.at >= last, "trace time went backwards at {:?}", r.event);
        assert!(r.at <= out.result.jct);
        last = r.at;
    }
}

#[test]
fn bounded_recorder_keeps_the_tail() {
    let quick = ExpConfig::quick();
    let dag = Workload::ConnectedComponent.build(&quick.scale);
    let full = run_system_traced(
        &dag,
        &quick.cluster,
        &System::dagon(),
        Box::new(RingRecorder::unbounded()),
    );
    let total = full.result.trace.len() as u64;
    let bounded = run_system_traced(
        &dag,
        &quick.cluster,
        &System::dagon(),
        Box::new(RingRecorder::bounded(100)),
    );
    assert_eq!(bounded.result.trace.len(), 100);
    assert_eq!(bounded.result.trace.dropped, total - 100);
    // The ring keeps the most recent events: its records are the tail of
    // the unbounded run's log.
    let tail = &full.result.trace.records[(total - 100) as usize..];
    assert_eq!(bounded.result.trace.records, tail);
}
