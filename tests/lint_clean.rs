//! Tier-1 wrapper for the determinism lint: `cargo test -q` at the
//! workspace root must fail the moment any crate picks up an un-waived
//! determinism violation (D1-D5), without waiting for the CI lint job or
//! for a golden test to catch the nondeterminism after the fact.

use std::path::Path;

#[test]
fn workspace_has_no_unwaived_determinism_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = dagon_lint::analyze(root).expect("analyze workspace");
    assert!(report.files_scanned > 50, "lint walker lost the workspace");
    let rendered: String = report.findings.iter().map(dagon_lint::render).collect();
    assert!(
        report.is_clean(),
        "dagon-lint found un-waived violations:\n{rendered}"
    );
}
