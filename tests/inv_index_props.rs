//! Differential properties for PR 7's inverted pending-work index on
//! [`LocalityIndex`]: per-(stage, locality-level, executor) counts of
//! pending tasks, maintained incrementally from residency deltas and
//! pending-set pops/inserts.
//!
//! Two layers of coverage, mirroring `ready_props`:
//!
//! * **Index-level**: generated histories interleaving cache
//!   inserts/evicts, disk-replica loss (crash-style), pending pops and
//!   re-inserts (requeue-style), checked after every step against a
//!   brute-force per-(stage, level) membership oracle recomputed from the
//!   raw residency bitsets — plus the gate implication the placement fast
//!   path relies on: a zero count at (exec, level) must mean the
//!   first-match probe [`LocalityIndex::scan_first`] finds nothing there.
//! * **Sim-level**: random workloads and chaos fault plans run end-to-end
//!   in the dev profile, where `check_inv_consistency` re-derives every
//!   count from scratch at each scheduling opportunity; on top the
//!   properties pin determinism and the build-once guarantee
//!   (`inv_index_rebuilds == 1`) the CI bench guard asserts at scale.

// Test-only id mints from small generated counts.
#![allow(clippy::cast_possible_truncation)]

use dagon_cluster::hdfs::DataMap;
use dagon_cluster::{
    ClusterConfig, ExecId, FaultPlan, Locality, LocalityIndex, NodeId, PendingSet, TaskView,
    Topology,
};
use dagon_core::{run_system, System};
use dagon_dag::{BlockId, DagBuilder, RddId};
use dagon_workloads::{Scale, Workload};
use proptest::prelude::*;

const N_TASKS: u32 = 8;

/// Abstract step of a generated history: residency flips (the four
/// [`LocalityIndex`] mutators) interleaved with pending-set churn the way
/// the simulator drives them (launch pops, requeue/resubmit re-inserts).
#[derive(Clone, Debug)]
enum Step {
    /// Cache block `b % N_TASKS` on executor `i % n_execs`.
    Cache { b: u32, i: usize },
    /// Evict block `b % N_TASKS` from executor `i % n_execs`.
    Evict { b: u32, i: usize },
    /// Add a disk replica of block `b` on node `i % n_nodes`.
    DiskAdd { b: u32, i: usize },
    /// Drop the disk replica on node `i % n_nodes` (crash-style loss).
    DiskLose { b: u32, i: usize },
    /// Pop task `k % N_TASKS` from the pending set (launch).
    Pop { k: u32 },
    /// Re-insert task `k % N_TASKS` (requeue after a failure).
    Reinsert { k: u32 },
}

/// Weighted step kinds (no `prop_oneof` in the vendored shim, so the
/// weights are an integer draw): cache 3 / evict 2 / disk-add 1 /
/// disk-lose 1 / pop 3 / reinsert 2.
fn step_strategy() -> impl Strategy<Value = Step> {
    (0usize..12, 0u32..N_TASKS, 0usize..16).prop_map(|(kind, b, i)| match kind {
        0..=2 => Step::Cache { b, i },
        3..=4 => Step::Evict { b, i },
        5 => Step::DiskAdd { b, i },
        6 => Step::DiskLose { b, i },
        7..=9 => Step::Pop { k: b },
        _ => Step::Reinsert { k: b },
    })
}

/// One-stage fixture on a 2-rack topology: task `k` reads block `k` of
/// the source RDD, replication 1 so crash-style disk loss can push tasks
/// all the way to `Any`.
fn build() -> (Topology, LocalityIndex, PendingSet) {
    let mut b = DagBuilder::new("t");
    let src = b.hdfs_rdd("in", N_TASKS, 64.0);
    let _ = b
        .stage("s")
        .tasks(N_TASKS)
        .demand_cpus(1)
        .cpu_ms(100)
        .reads_narrow(src)
        .build();
    let dag = b.build().unwrap();
    let topo = Topology::build(&[2, 2], 2);
    let data = DataMap::place_sources(&dag, &topo, 1, 7);
    let tv: Vec<Vec<TaskView>> = vec![(0..N_TASKS)
        .map(|k| TaskView {
            loc_blocks: vec![BlockId::new(RddId(0), k)],
        })
        .collect()];
    // `new` already seeds the inverted index with every task pending —
    // the simulator starts each stage with a full pending set.
    let idx = LocalityIndex::new(&dag, &topo, data, &tv);
    (topo, idx, PendingSet::full(N_TASKS))
}

/// Brute-force level of task `k` on executor `e` from the raw residency
/// sets: max over the task's blocks of the per-block ladder walk. The
/// same definition `check_inv_consistency` uses, recomputed here
/// independently so the test does not trust the index's own oracle.
fn brute_level(idx: &LocalityIndex, topo: &Topology, k: u32, e: ExecId) -> Locality {
    let b = BlockId::new(RddId(0), k);
    let data = idx.data();
    if data.is_cached_in(b, e) {
        return Locality::Process;
    }
    let node = topo.node_of_exec(e);
    if data.disk_nodes(b).contains(&node)
        || data
            .cached_execs(b)
            .iter()
            .any(|x| topo.node_of_exec(*x) == node)
    {
        return Locality::Node;
    }
    let rack = topo.rack_of_node(node);
    if data
        .disk_nodes(b)
        .iter()
        .any(|n| topo.rack_of_node(*n) == rack)
        || data
            .cached_execs(b)
            .iter()
            .any(|x| topo.rack_of_exec(*x) == rack)
    {
        return Locality::Rack;
    }
    Locality::Any
}

/// Drive one abstract step, keeping the history valid (evicts only of
/// cached blocks, disk-loss only of present replicas, pops only of
/// pending tasks — the same preconditions the simulator guarantees).
fn drive(step: &Step, topo: &Topology, idx: &mut LocalityIndex, pending: &mut PendingSet) {
    let ne = topo.num_execs();
    let nn = topo.num_nodes();
    match *step {
        Step::Cache { b, i } => {
            let (b, e) = (BlockId::new(RddId(0), b % N_TASKS), ExecId((i % ne) as u32));
            if !idx.is_cached_in(b, e) {
                idx.add_cached(b, e);
            }
        }
        Step::Evict { b, i } => {
            let (b, e) = (BlockId::new(RddId(0), b % N_TASKS), ExecId((i % ne) as u32));
            if idx.is_cached_in(b, e) {
                idx.remove_cached(b, e);
            }
        }
        Step::DiskAdd { b, i } => {
            let (b, n) = (BlockId::new(RddId(0), b % N_TASKS), NodeId((i % nn) as u32));
            if !idx.data().disk_nodes(b).contains(&n) {
                idx.add_disk(b, n);
            }
        }
        Step::DiskLose { b, i } => {
            let (b, n) = (BlockId::new(RddId(0), b % N_TASKS), NodeId((i % nn) as u32));
            if idx.data().disk_nodes(b).contains(&n) {
                idx.remove_disk(b, n);
            }
        }
        Step::Pop { k } => {
            let k = k % N_TASKS;
            if pending.remove(k) {
                idx.on_pending_removed(0, k);
            }
        }
        Step::Reinsert { k } => {
            let k = k % N_TASKS;
            if pending.insert(k) {
                idx.on_pending_inserted(0, k);
            }
        }
    }
}

proptest! {
    /// After every step of any valid interleaved history, every
    /// per-(executor, level) count equals the brute-force membership scan
    /// over the pending set, in both the plain and strict variants — and
    /// the index's own from-scratch consistency oracle agrees.
    #[test]
    fn inv_counts_match_brute_force_oracle(
        steps in proptest::collection::vec(step_strategy(), 0..120),
    ) {
        let (topo, mut idx, mut pending) = build();
        for step in &steps {
            drive(step, &topo, &mut idx, &mut pending);
            prop_assert!(idx.check_inv_consistency(0, &pending));
            for e in 0..topo.num_execs() as u32 {
                let e = ExecId(e);
                for level in Locality::ALL {
                    let (mut cnt, mut scnt) = (0u32, 0u32);
                    for k in pending.iter() {
                        let l = brute_level(&idx, &topo, k, e);
                        if l == level {
                            cnt += 1;
                            let best = (0..topo.num_execs() as u32)
                                .map(|x| brute_level(&idx, &topo, k, ExecId(x)))
                                .min()
                                .unwrap();
                            if best == level {
                                scnt += 1;
                            }
                        }
                    }
                    prop_assert_eq!(
                        idx.pending_level_count(0, e, level), cnt,
                        "count drift at exec {:?} level {:?}", e, level
                    );
                    prop_assert_eq!(
                        idx.pending_strict_count(0, e, level), scnt,
                        "strict count drift at exec {:?} level {:?}", e, level
                    );
                }
            }
        }
    }

    /// The probe itself, differentially: after every step, for every
    /// (executor, level, strict) combination, [`LocalityIndex::scan_first`]
    /// returns exactly the brute-force first pending task at that level —
    /// and the count gates agree with it (zero ⟺ empty probe). Probing
    /// *inside* the history is the point: the persistent scan memos get
    /// populated, then patched by residency flips, filtered across pops,
    /// and reset by re-inserts, and must stay bit-equal to a fresh scan
    /// throughout.
    #[test]
    fn scan_first_matches_fresh_scan_through_history(
        steps in proptest::collection::vec(step_strategy(), 0..80),
    ) {
        let (topo, mut idx, mut pending) = build();
        for step in &steps {
            drive(step, &topo, &mut idx, &mut pending);
            for e in 0..topo.num_execs() as u32 {
                let e = ExecId(e);
                for level in Locality::ALL {
                    for strict in [false, true] {
                        let fresh = pending.iter().find(|&k| {
                            brute_level(&idx, &topo, k, e) == level
                                && (!strict
                                    || (0..topo.num_execs() as u32)
                                        .map(|x| brute_level(&idx, &topo, k, ExecId(x)))
                                        .min()
                                        .unwrap()
                                        == level)
                        });
                        let probe = idx.scan_first(0, e, level, strict, &pending, &[]);
                        prop_assert_eq!(
                            probe, fresh,
                            "probe diverged at exec {:?} level {:?} strict {}",
                            e, level, strict
                        );
                        let cnt = if strict {
                            idx.pending_strict_count(0, e, level)
                        } else {
                            idx.pending_level_count(0, e, level)
                        };
                        prop_assert_eq!(
                            cnt > 0,
                            probe.is_some(),
                            "gate {} vs probe {:?} at exec {:?} level {:?} strict {}",
                            cnt, probe, e, level, strict
                        );
                    }
                }
            }
        }
    }
}

// --- sim-level: random workloads + fault plans -------------------------

const WORKLOADS: &[Workload] = &[
    Workload::LinearRegression,
    Workload::KMeans,
    Workload::TriangleCount,
    Workload::ConnectedComponent,
    Workload::PregelOperation,
    Workload::PageRank,
];

fn small_cluster() -> ClusterConfig {
    let mut c = ClusterConfig::paper_testbed();
    c.racks = vec![2, 1];
    c.execs_per_node = 2;
    c.exec_cache_mb = 256.0;
    c
}

/// One end-to-end run in the dev profile: the simulator debug-asserts
/// `check_inv_consistency` for every ready stage at every scheduling
/// opportunity, so simply completing is the differential check. On top,
/// the run must be deterministic and must never rebuild the inverted
/// index after construction (the counter the CI guard pins at scale).
fn check_run(w: Workload, tasks: u32, iterations: u32, fault_seed: Option<u64>) {
    let scale = Scale {
        tasks,
        block_mb: 32.0,
        iterations,
    };
    let dag = w.build(&scale);
    let mut cl = small_cluster();
    if let Some(seed) = fault_seed {
        let n_exec = cl.total_nodes() * cl.execs_per_node;
        cl.faults = Some(FaultPlan::chaos(seed, n_exec, 40_000, &dag));
    }
    let sys = System::dagon();
    let a = run_system(&dag, &cl, &sys).result;
    let b = run_system(&dag, &cl, &sys).result;
    assert_eq!(
        a.fingerprint(),
        b.fingerprint(),
        "nondeterministic run: {w:?} tasks={tasks} iters={iterations} fault={fault_seed:?}"
    );
    let s = &a.metrics.sched;
    assert_eq!(
        s.inv_index_rebuilds, 1,
        "inverted index rebuilt mid-run: {w:?} tasks={tasks} iters={iterations}"
    );
    assert!(
        s.inv_index_updates > 0,
        "inverted index never updated: {w:?}"
    );
    assert!(a
        .metrics
        .per_stage
        .iter()
        .all(|st| st.completed_at.is_some()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fault-free random workloads keep the inverted counts consistent
    /// (dev-profile oracle asserts) and rebuild-free.
    #[test]
    fn random_workloads_keep_inv_index_consistent(
        w_idx in 0usize..WORKLOADS.len(),
        tasks in 4u32..12,
        iterations in 1u32..4,
    ) {
        check_run(WORKLOADS[w_idx], tasks, iterations, None);
    }

    /// Chaos plans — crashes, restarts, requeues, lineage recomputation —
    /// drive the requeue/resubmit re-insert paths and crash-style replica
    /// loss without ever forcing an index rebuild.
    #[test]
    fn chaos_keeps_inv_index_consistent(
        w_idx in 0usize..WORKLOADS.len(),
        tasks in 4u32..10,
        fault_seed in 0u64..24,
    ) {
        check_run(WORKLOADS[w_idx], tasks, 2, Some(fault_seed));
    }
}

/// Pinned: the crash-restart shape most likely to churn pending sets and
/// residency at once (every executor dies at least once under chaos seed
/// 11 on CC) — the regression that motivated the claims-blind gate design.
#[test]
fn chaos_regression_cc_seed11() {
    check_run(Workload::ConnectedComponent, 8, 2, Some(11));
}
